// In-memory duplex pipe: two bounded byte queues joined back-to-back.
// Bounded capacity gives TCP-like backpressure (a fast writer blocks
// until the reader drains), which matters for the bulk-transfer
// experiments — without it a 200 MB PUT would just balloon memory.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "net/stream.h"

namespace davpse::net {

/// One direction of a pipe. Thread-safe single-producer/single-consumer
/// is the intended use, but any number of threads may call safely.
class ByteQueue {
 public:
  explicit ByteQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns kUnavailable if the read side closed.
  Status write(std::string_view data, std::atomic<uint64_t>* counter);

  /// Blocks while empty. 0 = clean EOF after writer shutdown.
  /// `timeout_seconds` > 0 bounds the wait (kTimeout on expiry).
  Result<size_t> read(char* buf, size_t max, double timeout_seconds = 0);

  /// Non-blocking read: whatever is buffered right now (see TryRead).
  Result<TryRead> try_read(char* buf, size_t max);

  /// Non-blocking write: appends as much of `data` as fits under the
  /// capacity and returns the count (0 = full, would block).
  /// kUnavailable if the read side closed.
  Result<size_t> try_write(std::string_view data,
                           std::atomic<uint64_t>* counter);

  /// Read-readiness watcher: fired (with `token`) on every transition
  /// to readable — buffered data appearing, writer EOF, or abort — and
  /// immediately at registration if already readable. One watcher per
  /// queue; nullptr deregisters. The callback runs under the queue
  /// mutex: it must only enqueue-and-signal (see ReadinessWatcher).
  void set_read_watcher(ReadinessWatcher* watcher, uint64_t token);

  void close_write();  // EOF for readers after draining
  void abort();        // hard close: readers get kUnavailable immediately

 private:
  /// Pre: mutex_ held. Fires the watcher if one is registered.
  void notify_watcher_locked();

  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::string buffer_;
  bool write_closed_ = false;
  bool aborted_ = false;
  ReadinessWatcher* watcher_ = nullptr;
  uint64_t watcher_token_ = 0;
};

struct PipePair {
  std::unique_ptr<Stream> a;
  std::unique_ptr<Stream> b;
  std::shared_ptr<TrafficCounter> traffic;
};

/// Default per-direction buffering for make_pipe.
inline constexpr size_t kDefaultPipeCapacity = 256 * 1024;

/// Creates a connected pair of streams. Writes to `a` are read from
/// `b` and vice versa. `capacity` bounds in-flight bytes per direction.
PipePair make_pipe(size_t capacity = kDefaultPipeCapacity);

}  // namespace davpse::net
