#include "net/pipe.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace davpse::net {

Status ByteQueue::write(std::string_view data,
                        std::atomic<uint64_t>* counter) {
  size_t written = 0;
  while (written < data.size()) {
    std::unique_lock<std::mutex> lock(mutex_);
    writable_.wait(lock, [&] {
      return aborted_ || write_closed_ || buffer_.size() < capacity_;
    });
    if (aborted_ || write_closed_) {
      return error(ErrorCode::kUnavailable, "pipe closed during write");
    }
    size_t room = capacity_ - buffer_.size();
    size_t chunk = std::min(room, data.size() - written);
    bool was_empty = buffer_.empty();
    buffer_.append(data.data() + written, chunk);
    written += chunk;
    if (counter != nullptr) {
      counter->fetch_add(chunk, std::memory_order_relaxed);
    }
    readable_.notify_all();
    if (was_empty && chunk > 0) notify_watcher_locked();
  }
  return Status::ok();
}

Result<TryRead> ByteQueue::try_read(char* buf, size_t max) {
  std::lock_guard<std::mutex> lock(mutex_);
  TryRead result;
  if (!buffer_.empty()) {
    result.bytes = std::min(max, buffer_.size());
    std::memcpy(buf, buffer_.data(), result.bytes);
    buffer_.erase(0, result.bytes);
    writable_.notify_all();
    return result;
  }
  if (aborted_) {
    return Status(ErrorCode::kUnavailable, "pipe aborted");
  }
  result.would_block = !write_closed_;  // closed writer = clean EOF
  return result;
}

Result<size_t> ByteQueue::try_write(std::string_view data,
                                    std::atomic<uint64_t>* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_ || write_closed_) {
    return Status(ErrorCode::kUnavailable, "pipe closed during write");
  }
  size_t room = capacity_ > buffer_.size() ? capacity_ - buffer_.size() : 0;
  size_t chunk = std::min(room, data.size());
  if (chunk > 0) {
    bool was_empty = buffer_.empty();
    buffer_.append(data.data(), chunk);
    if (counter != nullptr) {
      counter->fetch_add(chunk, std::memory_order_relaxed);
    }
    readable_.notify_all();
    if (was_empty) notify_watcher_locked();
  }
  return chunk;
}

void ByteQueue::set_read_watcher(ReadinessWatcher* watcher, uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  watcher_ = watcher;
  watcher_token_ = token;
  // Level-triggered at registration: a queue that is already readable
  // (data, EOF, or abort) fires straight away, so a reactor can park a
  // connection without racing data that arrived just before.
  if (watcher_ != nullptr && (!buffer_.empty() || write_closed_ || aborted_)) {
    watcher_->on_ready(watcher_token_);
  }
}

void ByteQueue::notify_watcher_locked() {
  if (watcher_ != nullptr) watcher_->on_ready(watcher_token_);
}

Result<size_t> ByteQueue::read(char* buf, size_t max,
                               double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto ready = [&] { return aborted_ || write_closed_ || !buffer_.empty(); };
  if (timeout_seconds > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::duration<double>(timeout_seconds));
    if (!readable_.wait_until(lock, deadline, ready)) {
      return Status(ErrorCode::kTimeout, "read timed out");
    }
  } else {
    readable_.wait(lock, ready);
  }
  if (!buffer_.empty()) {
    size_t chunk = std::min(max, buffer_.size());
    std::memcpy(buf, buffer_.data(), chunk);
    buffer_.erase(0, chunk);
    writable_.notify_all();
    return chunk;
  }
  if (aborted_) {
    return Status(ErrorCode::kUnavailable, "pipe aborted");
  }
  return size_t{0};  // clean EOF
}

void ByteQueue::close_write() {
  std::lock_guard<std::mutex> lock(mutex_);
  write_closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
  notify_watcher_locked();  // EOF is a readable event
}

void ByteQueue::abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  buffer_.clear();
  readable_.notify_all();
  writable_.notify_all();
  notify_watcher_locked();  // abort wakes parked readers too
}

namespace {

/// One end of the duplex pipe: reads from `in`, writes to `out`.
class PipeStream final : public Stream {
 public:
  PipeStream(std::shared_ptr<ByteQueue> in, std::shared_ptr<ByteQueue> out,
             std::shared_ptr<TrafficCounter> traffic,
             std::atomic<uint64_t>* out_counter)
      : in_(std::move(in)),
        out_(std::move(out)),
        traffic_(std::move(traffic)),
        out_counter_(out_counter) {}

  ~PipeStream() override { close(); }

  Result<size_t> read(char* buf, size_t max) override {
    return in_->read(buf, max, read_timeout_seconds_);
  }

  void set_read_timeout(double seconds) override {
    read_timeout_seconds_ = seconds;
  }

  Status write(std::string_view data) override {
    return out_->write(data, out_counter_);
  }

  Result<TryRead> try_read(char* buf, size_t max) override {
    return in_->try_read(buf, max);
  }

  Result<size_t> try_write(std::string_view data) override {
    return out_->try_write(data, out_counter_);
  }

  bool watch_readable(ReadinessWatcher* watcher, uint64_t token) override {
    in_->set_read_watcher(watcher, token);
    return true;
  }

  void shutdown_write() override { out_->close_write(); }

  void close() override {
    out_->close_write();
    in_->abort();
  }

  const TrafficCounter* traffic() const override { return traffic_.get(); }

  uint64_t bytes_written() const override {
    return out_counter_ != nullptr
               ? out_counter_->load(std::memory_order_relaxed)
               : 0;
  }

 private:
  std::shared_ptr<ByteQueue> in_;
  std::shared_ptr<ByteQueue> out_;
  std::shared_ptr<TrafficCounter> traffic_;
  std::atomic<uint64_t>* out_counter_;
  double read_timeout_seconds_ = 0;
};

}  // namespace

PipePair make_pipe(size_t capacity) {
  auto a_to_b = std::make_shared<ByteQueue>(capacity);
  auto b_to_a = std::make_shared<ByteQueue>(capacity);
  auto traffic = std::make_shared<TrafficCounter>();
  PipePair pair;
  pair.a = std::make_unique<PipeStream>(b_to_a, a_to_b, traffic,
                                        &traffic->bytes_a_to_b);
  pair.b = std::make_unique<PipeStream>(a_to_b, b_to_a, traffic,
                                        &traffic->bytes_b_to_a);
  pair.traffic = traffic;
  return pair;
}

}  // namespace davpse::net
