#include "net/poller.h"

#include <chrono>

#include "util/clock.h"

namespace davpse::net {

void Poller::on_ready(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.insert(token).second) {
    ready_.push_back(token);
    // Stamp the arrival so wait() can histogram readiness→drain lag.
    // Dedup keeps the *first* arrival: the lag that matters is from
    // when the token could first have been served.
    if (wake_histogram_ != nullptr) arrival_[token] = wall_time_seconds();
  }
  cv_.notify_one();
}

void Poller::wake() {
  std::lock_guard<std::mutex> lock(mutex_);
  woken_ = true;
  cv_.notify_one();
}

std::vector<uint64_t> Poller::wait(double timeout_seconds) {
  double entered = wall_time_seconds();
  std::unique_lock<std::mutex> lock(mutex_);
  if (!signaled_locked() && timeout_seconds != 0) {
    if (timeout_seconds < 0) {
      cv_.wait(lock, [&] { return signaled_locked(); });
    } else {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::duration<double>(timeout_seconds));
      cv_.wait_until(lock, deadline, [&] { return signaled_locked(); });
    }
  }
  ++wakeups_;
  woken_ = false;
  std::vector<uint64_t> tokens = drain_locked();
  double now = wall_time_seconds();
  if (wait_histogram_ != nullptr) wait_histogram_->observe(now - entered);
  if (wake_histogram_ != nullptr) {
    for (uint64_t token : tokens) {
      auto it = arrival_.find(token);
      if (it == arrival_.end()) continue;
      wake_histogram_->observe(now - it->second);
      arrival_.erase(it);
    }
  }
  return tokens;
}

uint64_t Poller::wakeups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wakeups_;
}

void Poller::set_metrics(obs::Registry* registry) {
  obs::Registry& resolved = obs::registry_or_global(registry);
  std::lock_guard<std::mutex> lock(mutex_);
  wait_histogram_ = &resolved.histogram("net.poller.wait_seconds");
  wake_histogram_ = &resolved.histogram("net.poller.wake_seconds");
}

std::vector<uint64_t> Poller::drain_locked() {
  std::vector<uint64_t> tokens;
  tokens.swap(ready_);
  pending_.clear();
  return tokens;
}

}  // namespace davpse::net
