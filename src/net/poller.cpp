#include "net/poller.h"

#include <chrono>

namespace davpse::net {

void Poller::on_ready(uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.insert(token).second) {
    ready_.push_back(token);
  }
  cv_.notify_one();
}

void Poller::wake() {
  std::lock_guard<std::mutex> lock(mutex_);
  woken_ = true;
  cv_.notify_one();
}

std::vector<uint64_t> Poller::wait(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!signaled_locked() && timeout_seconds != 0) {
    if (timeout_seconds < 0) {
      cv_.wait(lock, [&] { return signaled_locked(); });
    } else {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::duration<double>(timeout_seconds));
      cv_.wait_until(lock, deadline, [&] { return signaled_locked(); });
    }
  }
  ++wakeups_;
  woken_ = false;
  return drain_locked();
}

uint64_t Poller::wakeups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wakeups_;
}

std::vector<uint64_t> Poller::drain_locked() {
  std::vector<uint64_t> tokens;
  tokens.swap(ready_);
  pending_.clear();
  return tokens;
}

}  // namespace davpse::net
