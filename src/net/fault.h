// Deterministic, seedable fault injection for the in-memory transport.
// The paper claims the open HTTP/DAV stack is *robust* at scientific
// data sizes, but every bench and test in this repo had only ever run
// over a perfect network. FaultInjectingNetwork decorates any
// net::Network so an unchanged client/server stack can be exercised
// under connection refusals, mid-stream resets, delays, truncation,
// and body bit-rot — each drawn from an explicitly seeded schedule, so
// a failing run replays exactly.
//
// Faults are injected on the *connecting* (client) side stream; resets
// propagate to the server end through normal pipe abort semantics, the
// same way a dropped TCP peer looks to a daemon.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "net/network.h"
#include "net/stream.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace davpse::net {

/// Per-operation fault probabilities. All default to 0 (a transparent
/// wrapper); the seed makes every draw reproducible.
struct FaultConfig {
  uint64_t seed = 1;
  /// P(connect() fails with kUnavailable before a stream exists).
  double connect_failure = 0;
  /// P per read() of a hard connection reset (kUnavailable; the peer
  /// sees the abort too).
  double read_reset = 0;
  /// P per write() of a reset before any byte leaves — the request was
  /// provably not sent, the one case a non-idempotent replay is safe.
  double write_reset = 0;
  /// P per write() of a reset after a partial prefix was delivered —
  /// the ambiguous case: the peer may or may not have acted on it.
  double write_reset_midway = 0;
  /// P per read() of an injected stall of delay_seconds.
  double read_delay = 0;
  double delay_seconds = 0.005;
  /// P per read() of premature clean EOF (looks like a truncated
  /// message to the framing layer). Sticky: once truncated, the stream
  /// stays at EOF.
  double truncate = 0;
  /// P per write() of one flipped byte in the block (bit-rot).
  double corrupt = 0;
  /// Registry receiving "resilience.injected.*" counters; nullptr
  /// records into obs::Registry::global().
  obs::Registry* metrics = nullptr;
};

/// Shared schedule state: the counters and the deterministic seed
/// hand-out. One injector serves every stream of one
/// FaultInjectingNetwork; streams draw from private RNGs seeded here so
/// concurrent connections stay individually deterministic.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Deterministic seed for the next stream (mixes the schedule seed
  /// with a connection ordinal).
  uint64_t next_stream_seed();

  /// Forces the next `n` connect() calls to fail regardless of
  /// probabilities — the deterministic knob table-driven tests use.
  void fail_next_connects(int n);

  /// Decides (and records) whether this connect() fails.
  bool take_connect_failure();

  // Counters for the injecting stream to record into.
  obs::Counter& connect_failures;
  obs::Counter& read_resets;
  obs::Counter& write_resets;
  obs::Counter& delays;
  obs::Counter& truncations;
  obs::Counter& corruptions;

 private:
  FaultConfig config_;
  std::mutex mutex_;
  Rng connect_rng_;
  int forced_connect_failures_ = 0;
  std::atomic<uint64_t> next_stream_{0};
};

/// Stream decorator applying one fault schedule. Forwards everything —
/// including set_read_timeout, traffic, and bytes_written — so the
/// wrapped stream is indistinguishable from a plain one until a fault
/// fires.
class FaultInjectingStream final : public Stream {
 public:
  FaultInjectingStream(std::unique_ptr<Stream> inner,
                       FaultInjector* injector, uint64_t seed);

  Result<size_t> read(char* buf, size_t max) override;
  Status write(std::string_view data) override;
  /// Non-blocking paths draw from the same per-stream schedule in the
  /// same order as their blocking twins, so a seeded run replays
  /// identically whichever API the caller uses. A drawn read delay is
  /// reported as would-block instead of sleeping (a reactor must never
  /// be stalled by an injected delay); resets and truncations surface
  /// exactly as they do on the blocking path.
  Result<TryRead> try_read(char* buf, size_t max) override;
  Result<size_t> try_write(std::string_view data) override;
  bool watch_readable(ReadinessWatcher* watcher, uint64_t token) override {
    return inner_->watch_readable(watcher, token);
  }
  void shutdown_write() override { inner_->shutdown_write(); }
  void close() override { inner_->close(); }
  void set_read_timeout(double seconds) override {
    inner_->set_read_timeout(seconds);
  }
  const TrafficCounter* traffic() const override { return inner_->traffic(); }
  uint64_t bytes_written() const override { return inner_->bytes_written(); }

 private:
  std::unique_ptr<Stream> inner_;
  FaultInjector* injector_;
  Rng rng_;
  bool truncated_ = false;
};

/// Network decorator: listen() passes through untouched (servers bind
/// on the inner network); connect() may refuse, and successful
/// connections come back wrapped in a FaultInjectingStream.
class FaultInjectingNetwork final : public Network {
 public:
  /// `inner` nullptr decorates the process-wide Network::instance().
  explicit FaultInjectingNetwork(FaultConfig config,
                                 Network* inner = nullptr);

  Result<std::unique_ptr<Listener>> listen(
      const std::string& endpoint) override {
    return inner_->listen(endpoint);
  }
  Result<std::unique_ptr<Stream>> connect(const std::string& endpoint) override;
  uint64_t total_bytes() const override { return inner_->total_bytes(); }

  FaultInjector& injector() { return injector_; }

 private:
  Network* inner_;
  FaultInjector injector_;
};

}  // namespace davpse::net
