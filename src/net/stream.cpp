#include "net/stream.h"

namespace davpse::net {

Status Stream::read_exact(char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    auto chunk = read(buf + got, n - got);
    if (!chunk.ok()) return chunk.status();
    if (chunk.value() == 0) {
      return error(ErrorCode::kUnavailable, "EOF before " +
                                                std::to_string(n) +
                                                " bytes were read");
    }
    got += chunk.value();
  }
  return Status::ok();
}

Result<std::string> Stream::read_all() {
  std::string out;
  char buf[16384];
  for (;;) {
    auto chunk = read(buf, sizeof buf);
    if (!chunk.ok()) return chunk.status();
    if (chunk.value() == 0) return out;
    out.append(buf, chunk.value());
  }
}

}  // namespace davpse::net
