// Named-endpoint rendezvous: an in-process "network" where servers
// listen on "host:port" names and clients connect by the same name.
// Connections are in-memory pipes; per-network traffic totals feed the
// NetworkModel.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/pipe.h"
#include "net/stream.h"

namespace davpse::net {

class Network;

/// Server-side accept queue for one endpoint. Unregisters itself from
/// the network on destruction.
class Listener {
 public:
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks for the next inbound connection. kUnavailable once the
  /// listener is shut down.
  Result<std::unique_ptr<Stream>> accept();

  /// Non-blocking accept: the next pending connection, nullptr when
  /// none is waiting (would block), kUnavailable once shut down.
  Result<std::unique_ptr<Stream>> try_accept();

  /// Watcher fired (with `token`) whenever a connection is enqueued or
  /// the listener shuts down; fires immediately at registration if
  /// connections are already pending. nullptr deregisters. The callback
  /// runs under the listener mutex — enqueue-and-signal only. The
  /// watcher must outlive the listener or be deregistered first:
  /// destruction implies shutdown(), which fires it one last time.
  void set_accept_watcher(ReadinessWatcher* watcher, uint64_t token);

  /// Wakes all accept() calls with kUnavailable and refuses new
  /// connections.
  void shutdown();

  const std::string& endpoint() const { return endpoint_; }

 private:
  friend class Network;
  Listener(Network* network, std::string endpoint)
      : network_(network), endpoint_(std::move(endpoint)) {}

  /// Called by Network::connect(); returns false after shutdown.
  bool enqueue(std::unique_ptr<Stream> server_end);

  Network* network_;
  const std::string endpoint_;
  std::mutex mutex_;
  std::condition_variable pending_cv_;
  std::deque<std::unique_ptr<Stream>> pending_;
  bool shut_down_ = false;
  ReadinessWatcher* watcher_ = nullptr;
  uint64_t watcher_token_ = 0;
};

/// The rendezvous surface is virtual so transport decorators (the
/// fault-injecting network in net/fault.h) can stand in anywhere a
/// Network is accepted — clients and servers are written against this
/// interface and never know whether their streams are being faulted.
class Network {
 public:
  Network() = default;
  /// `pipe_capacity` bounds in-flight bytes per direction on every
  /// connection made through this network. Tests shrink it to force
  /// transport backpressure (e.g. a peer that never reads fills its
  /// inbound queue after `pipe_capacity` bytes).
  explicit Network(size_t pipe_capacity) : pipe_capacity_(pipe_capacity) {}
  virtual ~Network() = default;

  /// Process-wide default network; individual tests may build private
  /// instances for isolation.
  static Network& instance();

  /// Claims an endpoint name. kAlreadyExists if something listens there.
  virtual Result<std::unique_ptr<Listener>> listen(
      const std::string& endpoint);

  /// Dials an endpoint. kUnavailable (connection refused) if nothing is
  /// listening — the same retryable taxonomy a downed server produces,
  /// distinct from a kNotFound *resource* inside a healthy server.
  virtual Result<std::unique_ptr<Stream>> connect(const std::string& endpoint);

  /// Aggregate bytes moved over every connection made through this
  /// network since construction.
  virtual uint64_t total_bytes() const;

 private:
  friend class Listener;
  void unregister(const std::string& endpoint, Listener* listener);

  const size_t pipe_capacity_ = 0;  // 0 = make_pipe default
  mutable std::mutex mutex_;
  std::map<std::string, Listener*> listeners_;
  std::vector<std::shared_ptr<TrafficCounter>> traffic_;
};

}  // namespace davpse::net
