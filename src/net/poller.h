// Readiness multiplexer for the in-memory transport: the deterministic
// epoll analogue at the heart of the reactor server core. Streams and
// listeners registered via their watch hooks (Stream::watch_readable,
// Listener::set_accept_watcher) post tokens here as they become ready;
// one reactor thread blocks in wait() and drains the ready set. Unlike
// epoll there is no fd table — a token is just a caller-chosen uint64
// the caller maps back to its own connection state — so registration
// lives with the source and the Poller stays a pure rendezvous.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/stream.h"
#include "obs/metrics.h"

namespace davpse::net {

/// Thread-safe ready-set with a blocking wait. Tokens are deduplicated
/// while pending (a source may signal twice — data then abort — before
/// the reactor gets around to it); arrival order is preserved.
class Poller final : public ReadinessWatcher {
 public:
  /// ReadinessWatcher hook: sources call this (possibly under their own
  /// lock) to mark `token` ready. Cheap: one mutex, one set insert, one
  /// condvar signal.
  void on_ready(uint64_t token) override;

  /// Wakes wait() without marking any token ready — the shutdown path
  /// (and "a worker re-parked a connection with an earlier deadline"
  /// path). Sticky: a wake posted while no one is waiting is consumed
  /// by the next wait() instead of being lost.
  void wake();

  /// Blocks until at least one token is ready, wake() is called, or
  /// `timeout_seconds` elapses (negative = wait indefinitely; 0 = poll
  /// without blocking). Returns the drained ready tokens in arrival
  /// order — empty on timeout or bare wake.
  std::vector<uint64_t> wait(double timeout_seconds);

  /// Total times wait() returned (readiness, wake, or timeout) — the
  /// reactor's "http.server.poller_wakes" counter reads this.
  uint64_t wakeups() const;

  /// Opt-in latency telemetry into `registry` (nullptr resolves the
  /// global registry): "net.poller.wait_seconds" histograms how long
  /// each wait() blocked, "net.poller.wake_seconds" the lag from a
  /// source's on_ready() to the reactor draining that token (the
  /// readiness→reactor half of scheduling latency; the dispatch→worker
  /// half is the server's queue-wait histogram). Call before the
  /// reactor starts waiting; when enabled, on_ready() additionally
  /// stamps each newly pending token's arrival time.
  void set_metrics(obs::Registry* registry);

 private:
  bool signaled_locked() const { return woken_ || !ready_.empty(); }
  std::vector<uint64_t> drain_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<uint64_t> ready_;          // arrival order
  std::unordered_set<uint64_t> pending_; // dedup while queued
  bool woken_ = false;
  uint64_t wakeups_ = 0;
  /// Telemetry (null = off). Guarded by mutex_ like the ready set;
  /// arrival_ holds on_ready() stamps for tokens still pending.
  obs::Histogram* wait_histogram_ = nullptr;
  obs::Histogram* wake_histogram_ = nullptr;
  std::unordered_map<uint64_t, double> arrival_;
};

}  // namespace davpse::net
