#include "net/fault.h"

#include <chrono>
#include <thread>

namespace davpse::net {

FaultInjector::FaultInjector(FaultConfig config)
    : connect_failures(obs::registry_or_global(config.metrics)
                           .counter("resilience.injected.connect_failures")),
      read_resets(obs::registry_or_global(config.metrics)
                      .counter("resilience.injected.read_resets")),
      write_resets(obs::registry_or_global(config.metrics)
                       .counter("resilience.injected.write_resets")),
      delays(obs::registry_or_global(config.metrics)
                 .counter("resilience.injected.delays")),
      truncations(obs::registry_or_global(config.metrics)
                      .counter("resilience.injected.truncations")),
      corruptions(obs::registry_or_global(config.metrics)
                      .counter("resilience.injected.corruptions")),
      config_(std::move(config)),
      connect_rng_(config_.seed) {}

uint64_t FaultInjector::next_stream_seed() {
  // SplitMix64-style mix keeps per-stream sequences decorrelated while
  // staying a pure function of (schedule seed, connection ordinal).
  uint64_t ordinal = next_stream_.fetch_add(1, std::memory_order_relaxed);
  uint64_t z = config_.seed + 0x9e3779b97f4a7c15ULL * (ordinal + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void FaultInjector::fail_next_connects(int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  forced_connect_failures_ = n;
}

bool FaultInjector::take_connect_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (forced_connect_failures_ > 0) {
    --forced_connect_failures_;
    connect_failures.add(1);
    return true;
  }
  if (config_.connect_failure > 0 &&
      connect_rng_.coin(config_.connect_failure)) {
    connect_failures.add(1);
    return true;
  }
  return false;
}

FaultInjectingStream::FaultInjectingStream(std::unique_ptr<Stream> inner,
                                           FaultInjector* injector,
                                           uint64_t seed)
    : inner_(std::move(inner)), injector_(injector), rng_(seed) {}

Result<size_t> FaultInjectingStream::read(char* buf, size_t max) {
  const FaultConfig& config = injector_->config();
  if (truncated_) return size_t{0};
  if (config.read_reset > 0 && rng_.coin(config.read_reset)) {
    injector_->read_resets.add(1);
    inner_->close();
    return Status(ErrorCode::kUnavailable, "injected: connection reset");
  }
  if (config.truncate > 0 && rng_.coin(config.truncate)) {
    injector_->truncations.add(1);
    truncated_ = true;
    inner_->close();
    return size_t{0};  // premature clean EOF
  }
  if (config.read_delay > 0 && rng_.coin(config.read_delay)) {
    injector_->delays.add(1);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.delay_seconds));
  }
  return inner_->read(buf, max);
}

Result<TryRead> FaultInjectingStream::try_read(char* buf, size_t max) {
  const FaultConfig& config = injector_->config();
  if (truncated_) return TryRead{0, false};
  if (config.read_reset > 0 && rng_.coin(config.read_reset)) {
    injector_->read_resets.add(1);
    inner_->close();
    return Status(ErrorCode::kUnavailable, "injected: connection reset");
  }
  if (config.truncate > 0 && rng_.coin(config.truncate)) {
    injector_->truncations.add(1);
    truncated_ = true;
    inner_->close();
    return TryRead{0, false};  // premature clean EOF
  }
  if (config.read_delay > 0 && rng_.coin(config.read_delay)) {
    injector_->delays.add(1);
    return TryRead{0, true};  // delay = spurious would-block
  }
  return inner_->try_read(buf, max);
}

Result<size_t> FaultInjectingStream::try_write(std::string_view data) {
  const FaultConfig& config = injector_->config();
  if (config.write_reset > 0 && rng_.coin(config.write_reset)) {
    injector_->write_resets.add(1);
    inner_->close();
    return Status(ErrorCode::kUnavailable,
                  "injected: connection reset before send");
  }
  if (config.write_reset_midway > 0 && data.size() > 1 &&
      rng_.coin(config.write_reset_midway)) {
    injector_->write_resets.add(1);
    size_t prefix = 1 + rng_.uniform(0, data.size() - 2);
    (void)inner_->try_write(data.substr(0, prefix));
    inner_->close();
    return Status(ErrorCode::kUnavailable,
                  "injected: connection reset mid-send");
  }
  if (config.corrupt > 0 && !data.empty() && rng_.coin(config.corrupt)) {
    injector_->corruptions.add(1);
    std::string rotted(data);
    size_t at = rng_.uniform(0, rotted.size() - 1);
    rotted[at] = static_cast<char>(rotted[at] ^ (1 << rng_.uniform(0, 7)));
    return inner_->try_write(rotted);
  }
  return inner_->try_write(data);
}

Status FaultInjectingStream::write(std::string_view data) {
  const FaultConfig& config = injector_->config();
  if (config.write_reset > 0 && rng_.coin(config.write_reset)) {
    injector_->write_resets.add(1);
    inner_->close();
    return Status(ErrorCode::kUnavailable,
                  "injected: connection reset before send");
  }
  if (config.write_reset_midway > 0 && data.size() > 1 &&
      rng_.coin(config.write_reset_midway)) {
    injector_->write_resets.add(1);
    size_t prefix = 1 + rng_.uniform(0, data.size() - 2);
    (void)inner_->write(data.substr(0, prefix));
    inner_->close();
    return Status(ErrorCode::kUnavailable,
                  "injected: connection reset mid-send");
  }
  if (config.corrupt > 0 && !data.empty() && rng_.coin(config.corrupt)) {
    injector_->corruptions.add(1);
    std::string rotted(data);
    size_t at = rng_.uniform(0, rotted.size() - 1);
    rotted[at] = static_cast<char>(rotted[at] ^ (1 << rng_.uniform(0, 7)));
    return inner_->write(rotted);
  }
  return inner_->write(data);
}

FaultInjectingNetwork::FaultInjectingNetwork(FaultConfig config,
                                             Network* inner)
    : inner_(inner != nullptr ? inner : &Network::instance()),
      injector_(std::move(config)) {}

Result<std::unique_ptr<Stream>> FaultInjectingNetwork::connect(
    const std::string& endpoint) {
  if (injector_.take_connect_failure()) {
    return Status(ErrorCode::kUnavailable,
                  "injected: connection refused at " + endpoint);
  }
  auto stream = inner_->connect(endpoint);
  if (!stream.ok()) return stream.status();
  return std::unique_ptr<Stream>(std::make_unique<FaultInjectingStream>(
      std::move(stream).value(), &injector_, injector_.next_stream_seed()));
}

}  // namespace davpse::net
