// Byte-stream transport abstraction. The whole protocol stack (HTTP,
// FTP, OODB page protocol) is written against `Stream`, so the wire
// substrate can be swapped. The default implementation is an in-memory
// duplex pipe (`src/net/pipe.h`): the sandbox has no real LAN, and the
// paper's network-dependent numbers are recovered through the explicit
// `NetworkModel` accounting instead (see DESIGN.md, substitutions).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "util/status.h"

namespace davpse::net {

/// Bytes moved across a connection, split by direction. Shared by both
/// pipe ends; used by NetworkModel to convert a measured exchange into
/// modeled time on a configurable link.
struct TrafficCounter {
  std::atomic<uint64_t> bytes_a_to_b{0};
  std::atomic<uint64_t> bytes_b_to_a{0};

  uint64_t total() const {
    return bytes_a_to_b.load(std::memory_order_relaxed) +
           bytes_b_to_a.load(std::memory_order_relaxed);
  }
};

/// Receives readiness notifications from a stream or listener. The
/// reactor's Poller implements this; tokens let one watcher serve many
/// sources. Callbacks may fire from any thread, possibly while the
/// source's internal lock is held — implementations must only do cheap,
/// lock-ordered work (enqueue + signal) and must never call back into
/// the notifying source.
class ReadinessWatcher {
 public:
  virtual ~ReadinessWatcher() = default;
  virtual void on_ready(uint64_t token) = 0;
};

/// Outcome of a non-blocking read: `bytes > 0` means data was read;
/// `bytes == 0 && would_block` means nothing is available yet; and
/// `bytes == 0 && !would_block` means clean EOF (peer half-closed).
struct TryRead {
  size_t bytes = 0;
  bool would_block = false;
};

/// Blocking, reliable, ordered byte stream (TCP-like semantics).
class Stream {
 public:
  virtual ~Stream() = default;

  /// Blocks until at least one byte is available or EOF. Returns the
  /// number of bytes read; 0 means the peer half-closed (clean EOF).
  /// kUnavailable if the connection was aborted.
  virtual Result<size_t> read(char* buf, size_t max) = 0;

  /// Writes the whole buffer (blocking on backpressure). kUnavailable
  /// if the peer closed its read side.
  virtual Status write(std::string_view data) = 0;

  /// Signals EOF to the peer's reads; our reads stay usable.
  virtual void shutdown_write() = 0;

  /// Aborts both directions.
  virtual void close() = 0;

  /// Deadline for subsequent read() calls, in seconds; 0 disables.
  /// A timed-out read returns kTimeout. Used by the HTTP server to
  /// enforce its keep-alive idle limit (15 s in the paper's config).
  virtual void set_read_timeout(double seconds) { (void)seconds; }

  // --- Non-blocking / readiness surface (reactor core) ------------------
  //
  // The default implementations return kUnsupported / false so legacy
  // transports keep working; pipe streams (and decorators that forward,
  // like the fault injector) implement all three. A server that polls
  // must check watch_readable()'s return before parking a stream.

  /// Non-blocking read: returns immediately with whatever is available
  /// (see TryRead). kUnavailable if the connection was aborted.
  virtual Result<TryRead> try_read(char* buf, size_t max) {
    (void)buf;
    (void)max;
    return Status(ErrorCode::kUnsupported,
                  "stream does not support try_read");
  }

  /// Non-blocking write: accepts as many bytes as fit in the transport
  /// buffer right now and returns the count (0 = would block).
  /// kUnavailable if the peer closed its read side.
  virtual Result<size_t> try_write(std::string_view data) {
    (void)data;
    return Status(ErrorCode::kUnsupported,
                  "stream does not support try_write");
  }

  /// Registers `watcher` to be notified with `token` whenever this
  /// stream becomes readable (data arrived, peer EOF, or abort). Fires
  /// immediately if already readable. At most one watcher per stream;
  /// nullptr deregisters (after it returns, no further callbacks run).
  /// Returns false if this transport cannot signal readiness.
  virtual bool watch_readable(ReadinessWatcher* watcher, uint64_t token) {
    (void)watcher;
    (void)token;
    return false;
  }

  /// Per-connection traffic counter (never null for pipe streams).
  virtual const TrafficCounter* traffic() const { return nullptr; }

  /// Bytes this end has successfully handed to the transport since the
  /// connection opened. Retry loops snapshot this around a send to
  /// prove a failed request never left the client ("provably not
  /// sent"), which is what makes replaying a non-idempotent request
  /// safe. Wrapper streams must forward it.
  virtual uint64_t bytes_written() const { return 0; }

  // --- Convenience helpers built on read/write -------------------------

  /// Reads exactly `n` bytes; kUnavailable on premature EOF.
  Status read_exact(char* buf, size_t n);

  /// Reads until EOF.
  Result<std::string> read_all();
};

}  // namespace davpse::net
