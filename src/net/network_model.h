// Link-time modeling. The paper's testbed was a 150-Mbit/s LAN between
// Sun workstations; this sandbox moves bytes through memory. To recover
// network-shaped results (Table 2 especially: 20 MB ≈ 3 s, 200 MB ≈
// 30 s, i.e. bandwidth-bound), benches measure bytes + round trips and
// convert them to modeled seconds on a configurable link. Reported as
// "modeled" alongside the raw wall-clock measurement; EXPERIMENTS.md
// compares both against the paper.
#pragma once

#include <cstdint>
#include <string>

namespace davpse::net {

struct LinkProfile {
  double bandwidth_bits_per_sec;
  double round_trip_seconds;
  std::string name;

  /// The paper's environment: 150 Mbit/s, sub-millisecond LAN RTT.
  static LinkProfile paper_lan() {
    return {150e6, 0.0003, "150 Mbit/s LAN (paper testbed)"};
  }
  static LinkProfile fast_ethernet() {
    return {100e6, 0.0005, "100 Mbit/s Ethernet"};
  }
  static LinkProfile wan() { return {10e6, 0.040, "10 Mbit/s WAN"}; }
};

/// Accumulates an exchange's cost and converts it to modeled seconds:
///   bytes * 8 / bandwidth + round_trips * rtt
/// Round trips are counted at the protocol layer (one per
/// request/response, plus one per connection setup).
class NetworkModel {
 public:
  explicit NetworkModel(LinkProfile profile) : profile_(std::move(profile)) {}

  void add_bytes(uint64_t bytes) { bytes_ += bytes; }
  void add_round_trips(uint64_t n) { round_trips_ += n; }
  void reset() {
    bytes_ = 0;
    round_trips_ = 0;
  }

  uint64_t bytes() const { return bytes_; }
  uint64_t round_trips() const { return round_trips_; }

  double modeled_seconds() const {
    return static_cast<double>(bytes_) * 8.0 / profile_.bandwidth_bits_per_sec +
           static_cast<double>(round_trips_) * profile_.round_trip_seconds;
  }

  const LinkProfile& profile() const { return profile_; }

 private:
  LinkProfile profile_;
  uint64_t bytes_ = 0;
  uint64_t round_trips_ = 0;
};

}  // namespace davpse::net
