#include "net/network.h"

namespace davpse::net {

Listener::~Listener() {
  shutdown();
  if (network_ != nullptr) network_->unregister(endpoint_, this);
}

Result<std::unique_ptr<Stream>> Listener::accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  pending_cv_.wait(lock, [&] { return shut_down_ || !pending_.empty(); });
  if (!pending_.empty()) {
    auto stream = std::move(pending_.front());
    pending_.pop_front();
    return stream;
  }
  return Status(ErrorCode::kUnavailable,
                "listener shut down: " + endpoint_);
}

Result<std::unique_ptr<Stream>> Listener::try_accept() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) {
    auto stream = std::move(pending_.front());
    pending_.pop_front();
    return stream;
  }
  if (shut_down_) {
    return Status(ErrorCode::kUnavailable,
                  "listener shut down: " + endpoint_);
  }
  return std::unique_ptr<Stream>(nullptr);  // would block
}

void Listener::set_accept_watcher(ReadinessWatcher* watcher,
                                  uint64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  watcher_ = watcher;
  watcher_token_ = token;
  if (watcher_ != nullptr && (!pending_.empty() || shut_down_)) {
    watcher_->on_ready(watcher_token_);
  }
}

void Listener::shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shut_down_ = true;
  pending_.clear();
  pending_cv_.notify_all();
  if (watcher_ != nullptr) watcher_->on_ready(watcher_token_);
}

bool Listener::enqueue(std::unique_ptr<Stream> server_end) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shut_down_) return false;
  pending_.push_back(std::move(server_end));
  pending_cv_.notify_one();
  if (watcher_ != nullptr) watcher_->on_ready(watcher_token_);
  return true;
}

Network& Network::instance() {
  static Network* network = new Network();  // intentionally leaked
  return *network;
}

Result<std::unique_ptr<Listener>> Network::listen(
    const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listeners_.contains(endpoint)) {
    return Status(ErrorCode::kAlreadyExists,
                  "endpoint already bound: " + endpoint);
  }
  auto listener =
      std::unique_ptr<Listener>(new Listener(this, endpoint));
  listeners_[endpoint] = listener.get();
  return listener;
}

Result<std::unique_ptr<Stream>> Network::connect(const std::string& endpoint) {
  Listener* listener = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(endpoint);
    if (it == listeners_.end()) {
      return Status(ErrorCode::kUnavailable,
                    "connection refused: no listener at " + endpoint);
    }
    listener = it->second;
  }
  auto pair = pipe_capacity_ > 0 ? make_pipe(pipe_capacity_) : make_pipe();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traffic_.push_back(pair.traffic);
  }
  if (!listener->enqueue(std::move(pair.b))) {
    return Status(ErrorCode::kUnavailable,
                  "connection refused: listener shutting down at " + endpoint);
  }
  return std::move(pair.a);
}

uint64_t Network::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& counter : traffic_) total += counter->total();
  return total;
}

void Network::unregister(const std::string& endpoint, Listener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(endpoint);
  if (it != listeners_.end() && it->second == listener) {
    listeners_.erase(it);
  }
}

}  // namespace davpse::net
