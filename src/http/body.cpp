#include "http/body.h"

#include <cstring>
#include <system_error>

namespace davpse::http {

namespace fs = std::filesystem;

Result<uint64_t> drain_body(BodySource& source, BodySink& sink,
                            size_t block) {
  std::string buf(block, '\0');
  uint64_t total = 0;
  for (;;) {
    auto got = source.read(buf.data(), buf.size());
    if (!got.ok()) return got.status();
    if (got.value() == 0) break;
    DAVPSE_RETURN_IF_ERROR(
        sink.write(std::string_view(buf.data(), got.value())));
    total += got.value();
  }
  DAVPSE_RETURN_IF_ERROR(sink.finish());
  return total;
}

Status discard_body(BodySource& source, size_t block) {
  NullBodySink null;
  auto drained = drain_body(source, null, block);
  return drained.ok() ? Status::ok() : drained.status();
}

Result<size_t> StringBodySource::read(char* buf, size_t max) {
  size_t n = std::min(max, body_.size() - pos_);
  std::memcpy(buf, body_.data() + pos_, n);
  pos_ += n;
  return n;
}

Status StringBodySink::write(std::string_view data) {
  if (max_bytes_ != 0 && out_->size() + data.size() > max_bytes_) {
    return error(ErrorCode::kTooLarge,
                 "body exceeds limit of " + std::to_string(max_bytes_) +
                     " bytes");
  }
  out_->append(data);
  return Status::ok();
}

Result<std::unique_ptr<FileBodySource>> FileBodySource::open(
    const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kNotFound, "cannot open " + path.string());
  }
  in.seekg(0, std::ios::end);
  auto size = in.tellg();
  if (size < 0) {
    return Status(ErrorCode::kInternal, "cannot stat " + path.string());
  }
  in.seekg(0);
  return std::unique_ptr<FileBodySource>(new FileBodySource(
      std::move(in), path, static_cast<uint64_t>(size)));
}

Result<size_t> FileBodySource::read(char* buf, size_t max) {
  if (!in_.good() && !in_.eof()) {
    return Status(ErrorCode::kInternal, "read error on " + path_.string());
  }
  in_.read(buf, static_cast<std::streamsize>(max));
  auto got = in_.gcount();
  if (got == 0 && !in_.eof()) {
    return Status(ErrorCode::kInternal, "read error on " + path_.string());
  }
  return static_cast<size_t>(got);
}

bool FileBodySource::rewind() {
  in_.clear();
  in_.seekg(0);
  return in_.good();
}

FileBodySink::FileBodySink(fs::path path) : path_(std::move(path)) {
  tmp_ = path_;
  tmp_ += ".tmp";
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  open_failed_ = !out_.is_open();
}

FileBodySink::~FileBodySink() {
  if (!finished_ && !open_failed_) {
    out_.close();
    std::error_code ec;
    fs::remove(tmp_, ec);
  }
}

Status FileBodySink::write(std::string_view data) {
  if (open_failed_) {
    return error(ErrorCode::kInternal, "cannot create " + tmp_.string());
  }
  out_.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out_) {
    return error(ErrorCode::kInternal, "short write on " + tmp_.string());
  }
  bytes_ += data.size();
  return Status::ok();
}

Status FileBodySink::finish() {
  if (open_failed_) {
    return error(ErrorCode::kInternal, "cannot create " + tmp_.string());
  }
  if (finished_) return Status::ok();
  out_.close();
  if (!out_) {
    return error(ErrorCode::kInternal, "close failed on " + tmp_.string());
  }
  std::error_code ec;
  fs::rename(tmp_, path_, ec);
  if (ec) {
    fs::remove(tmp_, ec);
    return error(ErrorCode::kInternal, "rename failed for " + path_.string());
  }
  finished_ = true;
  return Status::ok();
}

}  // namespace davpse::http
