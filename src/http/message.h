// HTTP/1.1 message model: case-insensitive header map, request and
// response records, and the status-code vocabulary (including the
// WebDAV additions from RFC 2518: 207 Multi-Status, 423 Locked, ...).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/body.h"

namespace davpse::http {

/// Ordered, case-insensitive multimap as HTTP requires. Lookup is
/// linear — header counts are tiny.
class HeaderMap {
 public:
  void set(std::string_view name, std::string_view value);  // replace all
  void add(std::string_view name, std::string_view value);  // append
  void remove(std::string_view name);

  /// First value, or nullopt.
  std::optional<std::string_view> get(std::string_view name) const;
  std::vector<std::string_view> get_all(std::string_view name) const;
  bool has(std::string_view name) const;

  /// Parses the first value as a non-negative integer (Content-Length,
  /// Depth, Timeout seconds). nullopt if absent or non-numeric.
  std::optional<uint64_t> get_uint(std::string_view name) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method;   // uppercase token: GET, PUT, PROPFIND, ...
  std::string target;   // origin-form, percent-encoded: /a/b%20c
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Streaming body. When set it takes precedence over `body`: the
  /// wire layer pulls it in blocks (Content-Length when the source
  /// knows its length, chunked otherwise) so the full object is never
  /// resident. Sources are single-pass; shared_ptr keeps the message
  /// copyable, but only one copy may consume the stream.
  std::shared_ptr<BodySource> body_source;

  bool has_body_source() const { return body_source != nullptr; }

  /// True unless "Connection: close" (HTTP/1.1 default keep-alive).
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;

  /// Streaming body; same contract as HttpRequest::body_source.
  std::shared_ptr<BodySource> body_source;

  bool has_body_source() const { return body_source != nullptr; }

  bool keep_alive() const;

  static HttpResponse make(int status);
  static HttpResponse make(int status, std::string body,
                           std::string_view content_type = "text/plain");
  /// 207 Multi-Status with an XML body.
  static HttpResponse multistatus(std::string xml_body);
};

/// Reason phrase for a status code ("Multi-Status" for 207, etc.).
std::string_view reason_phrase(int status);

// Status codes used across the stack.
inline constexpr int kOk = 200;
inline constexpr int kCreated = 201;
inline constexpr int kNoContent = 204;
inline constexpr int kMultiStatus = 207;
inline constexpr int kBadRequest = 400;
inline constexpr int kUnauthorized = 401;
inline constexpr int kForbidden = 403;
inline constexpr int kNotFound = 404;
inline constexpr int kMethodNotAllowed = 405;
inline constexpr int kRequestTimeout = 408;
inline constexpr int kConflict = 409;
inline constexpr int kPreconditionFailed = 412;
inline constexpr int kRequestTooLarge = 413;
inline constexpr int kUnsupportedMediaType = 415;
inline constexpr int kLocked = 423;
inline constexpr int kFailedDependency = 424;
inline constexpr int kInternalError = 500;
inline constexpr int kNotImplemented = 501;
inline constexpr int kServiceUnavailable = 503;
inline constexpr int kInsufficientStorage = 507;

/// Whether a request of this method is safe to replay when it *may*
/// already have reached the server (response lost mid-read, per-attempt
/// timeout). Read-only methods qualify. PUT/DELETE — idempotent in
/// plain HTTP — are deliberately excluded: this repository auto-checks
/// in a new version on every PUT (DeltaV-lite), so a replayed PUT
/// records a duplicate version. Requests that provably never left the
/// client may always be replayed, whatever the method.
bool method_is_replay_safe(std::string_view method);

}  // namespace davpse::http
