#include "http/wire.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>

#include "util/strings.h"

namespace davpse::http {
namespace {

constexpr size_t kMaxLineLength = 64 * 1024;
constexpr size_t kMaxHeaderCount = 256;

bool is_token_char(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  return c == '!' || c == '#' || c == '$' || c == '%' || c == '&' ||
         c == '\'' || c == '*' || c == '+' || c == '-' || c == '.' ||
         c == '^' || c == '_' || c == '`' || c == '|' || c == '~';
}

/// RFC 1123 date for the Date header, cached per second per thread:
/// every response carries one, and strftime dominates the cost of
/// re-formatting a value that only changes once a second.
const std::string& http_date_now() {
  thread_local std::time_t formatted_at = -1;
  thread_local std::string cached;
  std::time_t now = std::time(nullptr);
  if (now != formatted_at) {
    char buf[64];
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    std::strftime(buf, sizeof buf, "%a, %d %b %Y %H:%M:%S GMT", &tm_utc);
    cached = buf;
    formatted_at = now;
  }
  return cached;
}

/// 204/304 and 1xx have no body by definition.
bool response_has_body(int status) {
  return status != 204 && status != 304 && (status < 100 || status >= 200);
}

}  // namespace

Status WireReader::fill() {
  // Compact the consumed prefix occasionally to bound memory.
  if (buffer_pos_ > 0 && buffer_pos_ == buffer_.size()) {
    buffer_.clear();
    buffer_pos_ = 0;
  } else if (buffer_pos_ > 1 << 20) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  char chunk[16384];
  auto got = stream_->read(chunk, sizeof chunk);
  if (!got.ok()) return got.status();
  if (got.value() == 0) {
    return error(ErrorCode::kUnavailable, "connection closed");
  }
  buffer_.append(chunk, got.value());
  return Status::ok();
}

Result<std::string> WireReader::read_line() {
  for (;;) {
    auto eol = buffer_.find('\n', buffer_pos_);
    if (eol != std::string::npos) {
      size_t len = eol - buffer_pos_;
      std::string line = buffer_.substr(buffer_pos_, len);
      buffer_pos_ = eol + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() - buffer_pos_ > kMaxLineLength) {
      return Status(ErrorCode::kMalformed, "header line too long");
    }
    DAVPSE_RETURN_IF_ERROR(fill());
  }
}

Status WireReader::read_exact_buffered(char* out, size_t n) {
  size_t copied = 0;
  while (copied < n) {
    auto got = read_some_buffered(out + copied, n - copied);
    if (!got.ok()) {
      if (got.status().code() == ErrorCode::kUnavailable) {
        return error(ErrorCode::kUnavailable, "EOF inside message body");
      }
      return got.status();
    }
    copied += got.value();
  }
  return Status::ok();
}

Result<size_t> WireReader::read_some_buffered(char* out, size_t max) {
  if (buffer_pos_ < buffer_.size()) {
    size_t available = buffer_.size() - buffer_pos_;
    size_t chunk = std::min(available, max);
    std::memcpy(out, buffer_.data() + buffer_pos_, chunk);
    buffer_pos_ += chunk;
    return chunk;
  }
  // Large bodies: read straight into the caller's buffer.
  auto got = stream_->read(out, max);
  if (!got.ok()) return got.status();
  if (got.value() == 0) {
    return Status(ErrorCode::kUnavailable, "EOF inside message body");
  }
  return got;
}

namespace {

Status parse_header_block(const std::function<Result<std::string>()>& next_line,
                          HeaderMap* headers) {
  for (;;) {
    auto line = next_line();
    if (!line.ok()) return line.status();
    if (line.value().empty()) return Status::ok();
    if (headers->size() >= kMaxHeaderCount) {
      return error(ErrorCode::kMalformed, "too many headers");
    }
    const std::string& raw = line.value();
    auto colon = raw.find(':');
    if (colon == std::string::npos || colon == 0) {
      return error(ErrorCode::kMalformed, "malformed header line: " + raw);
    }
    std::string_view name(raw.data(), colon);
    for (char c : name) {
      if (!is_token_char(c)) {
        return error(ErrorCode::kMalformed,
                     "bad header field name: " + std::string(name));
      }
    }
    std::string_view value = trim(std::string_view(raw).substr(colon + 1));
    headers->add(name, value);
  }
}

}  // namespace

/// Incremental wire decoder: serves body bytes straight off the
/// reader's connection, enforcing the body limit as bytes arrive.
/// Borrows the WireReader — one live wire source per connection.
class WireBodySource final : public BodySource {
 public:
  enum class Coding { kLength, kChunked };

  WireBodySource(WireReader* reader, Coding coding, uint64_t declared,
                 uint64_t max_body)
      : reader_(reader), coding_(coding), max_body_(max_body) {
    if (coding_ == Coding::kLength) {
      declared_ = declared;
      remaining_ = declared;
      done_ = remaining_ == 0;
    }
  }

  Result<size_t> read(char* buf, size_t max) override {
    if (!error_.is_ok()) return error_;
    if (done_ || max == 0) return static_cast<size_t>(0);
    auto got = coding_ == Coding::kLength ? read_length(buf, max)
                                          : read_chunked(buf, max);
    if (!got.ok()) error_ = got.status();
    return got;
  }

  std::optional<uint64_t> length() const override {
    if (coding_ == Coding::kLength) return declared_;
    return std::nullopt;  // chunked: unknown until the final chunk
  }

 private:
  Result<size_t> read_length(char* buf, size_t max) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(max, remaining_));
    auto got = reader_->read_some_buffered(buf, want);
    if (!got.ok()) {
      if (got.status().code() == ErrorCode::kUnavailable) {
        return Status(ErrorCode::kUnavailable, "EOF inside message body");
      }
      return got.status();
    }
    remaining_ -= got.value();
    if (remaining_ == 0) done_ = true;
    return got;
  }

  Result<size_t> read_chunked(char* buf, size_t max) {
    for (;;) {
      if (remaining_ > 0) {
        size_t want = static_cast<size_t>(
            std::min<uint64_t>(max, remaining_));
        auto got = reader_->read_some_buffered(buf, want);
        if (!got.ok()) {
          if (got.status().code() == ErrorCode::kUnavailable) {
            return Status(ErrorCode::kUnavailable,
                          "EOF inside chunk data");
          }
          return got.status();
        }
        remaining_ -= got.value();
        if (remaining_ == 0) {
          DAVPSE_RETURN_IF_ERROR(consume_chunk_crlf());
        }
        return got;
      }
      // At a chunk boundary: parse the next size line.
      auto size_line = reader_->read_line();
      if (!size_line.ok()) return size_line.status();
      // Chunk size is hex, possibly with extensions after ';'.
      std::string_view digits(size_line.value());
      auto semi = digits.find(';');
      if (semi != std::string_view::npos) digits = digits.substr(0, semi);
      digits = trim(digits);
      if (digits.empty()) {
        return Status(ErrorCode::kMalformed, "empty chunk size");
      }
      uint64_t chunk_size = 0;
      for (char c : digits) {
        int v;
        if (c >= '0' && c <= '9') {
          v = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          v = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          v = c - 'A' + 10;
        } else {
          return Status(ErrorCode::kMalformed, "bad chunk size");
        }
        if (chunk_size > (UINT64_MAX >> 4)) {
          return Status(ErrorCode::kMalformed, "chunk size overflows");
        }
        chunk_size = chunk_size * 16 + static_cast<uint64_t>(v);
      }
      if (chunk_size == 0) {
        // Trailer section: read until blank line.
        for (;;) {
          auto trailer = reader_->read_line();
          if (!trailer.ok()) return trailer.status();
          if (trailer.value().empty()) break;
        }
        done_ = true;
        return static_cast<size_t>(0);
      }
      // consumed_ never exceeds max_body_ here, so the subtraction
      // cannot wrap the way `consumed_ + chunk_size` could.
      if (max_body_ != 0 && chunk_size > max_body_ - consumed_) {
        return Status(ErrorCode::kTooLarge, "chunked body exceeds limit");
      }
      consumed_ += chunk_size;
      remaining_ = chunk_size;
    }
  }

  Status consume_chunk_crlf() {
    char crlf[2];
    DAVPSE_RETURN_IF_ERROR(reader_->read_exact_buffered(crlf, 2));
    if (crlf[0] != '\r' || crlf[1] != '\n') {
      return Status(ErrorCode::kMalformed, "missing CRLF after chunk");
    }
    return Status::ok();
  }

  WireReader* reader_;
  Coding coding_;
  uint64_t declared_ = 0;   // kLength only
  uint64_t remaining_ = 0;  // kLength: body left; kChunked: current chunk
  uint64_t consumed_ = 0;   // kChunked: total decoded so far
  uint64_t max_body_;
  bool done_ = false;
  Status error_ = Status::ok();  // decode errors are sticky
};

Result<std::unique_ptr<BodySource>> WireReader::open_body(
    const HeaderMap& headers, uint64_t max_body) {
  auto transfer = headers.get("Transfer-Encoding");
  if (transfer && !iequals(trim(*transfer), "identity")) {
    if (!iequals(trim(*transfer), "chunked")) {
      return Status(ErrorCode::kUnsupported,
                    "unsupported transfer coding: " + std::string(*transfer));
    }
    return std::unique_ptr<BodySource>(new WireBodySource(
        this, WireBodySource::Coding::kChunked, 0, max_body));
  }
  auto length = headers.get_uint("Content-Length");
  uint64_t declared = length ? *length : 0;
  if (max_body != 0 && declared > max_body) {
    return Status(ErrorCode::kTooLarge,
                  "declared body of " + std::to_string(declared) +
                      " bytes exceeds limit of " + std::to_string(max_body));
  }
  return std::unique_ptr<BodySource>(new WireBodySource(
      this, WireBodySource::Coding::kLength, declared, max_body));
}

Result<HttpRequest> WireReader::read_request_head() {
  auto start = read_line();
  if (!start.ok()) return start.status();
  // Tolerate a stray blank line between pipelined requests.
  while (start.ok() && start.value().empty()) {
    start = read_line();
    if (!start.ok()) return start.status();
  }
  auto parts = split(start.value(), ' ');
  if (parts.size() != 3) {
    return Status(ErrorCode::kMalformed,
                  "malformed request line: " + start.value());
  }
  HttpRequest request;
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  for (char c : request.method) {
    if (!is_token_char(c)) {
      return Status(ErrorCode::kMalformed, "bad method token");
    }
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status(ErrorCode::kUnsupported,
                  "unsupported version: " + request.version);
  }
  DAVPSE_RETURN_IF_ERROR(parse_header_block(
      [this] { return read_line(); }, &request.headers));
  return request;
}

namespace {

/// Buffers a wire body into `out` for the eager read paths. A known
/// Content-Length sizes the string once and fills it in place (no
/// block buffer, no growth copies); chunked bodies use the block drain.
Status buffer_wire_body(BodySource& source, std::string* out,
                        uint64_t max_body) {
  if (auto total = source.length()) {
    out->resize(static_cast<size_t>(*total));
    size_t off = 0;
    while (off < out->size()) {
      auto got = source.read(out->data() + off, out->size() - off);
      if (!got.ok()) return got.status();
      if (got.value() == 0) {
        return Status(ErrorCode::kUnavailable, "EOF inside message body");
      }
      off += got.value();
    }
    return Status::ok();
  }
  StringBodySink sink(out, max_body);
  return drain_body(source, sink).status();
}

}  // namespace

Result<HttpRequest> WireReader::read_request(uint64_t max_body) {
  auto head = read_request_head();
  if (!head.ok()) return head.status();
  HttpRequest request = std::move(head).value();
  auto source = open_body(request.headers, max_body);
  if (!source.ok()) return source.status();
  DAVPSE_RETURN_IF_ERROR(
      buffer_wire_body(*source.value(), &request.body, max_body));
  return request;
}

Result<HttpResponse> WireReader::read_response_head() {
  auto start = read_line();
  if (!start.ok()) return start.status();
  const std::string& line = start.value();
  // "HTTP/1.1 207 Multi-Status"
  if (!starts_with(line, "HTTP/1.")) {
    return Status(ErrorCode::kMalformed, "malformed status line: " + line);
  }
  auto first_space = line.find(' ');
  if (first_space == std::string::npos || first_space + 4 > line.size()) {
    return Status(ErrorCode::kMalformed, "malformed status line: " + line);
  }
  int status = 0;
  for (size_t i = first_space + 1; i < first_space + 4; ++i) {
    if (line[i] < '0' || line[i] > '9') {
      return Status(ErrorCode::kMalformed, "malformed status code");
    }
    status = status * 10 + (line[i] - '0');
  }
  HttpResponse response;
  response.status = status;
  DAVPSE_RETURN_IF_ERROR(parse_header_block(
      [this] { return read_line(); }, &response.headers));
  return response;
}

Result<HttpResponse> WireReader::read_response() {
  auto head = read_response_head();
  if (!head.ok()) return head.status();
  HttpResponse response = std::move(head).value();
  if (!response_has_body(response.status)) {
    return response;
  }
  auto source = open_body(response.headers, /*max_body=*/0);
  if (!source.ok()) return source.status();
  DAVPSE_RETURN_IF_ERROR(
      buffer_wire_body(*source.value(), &response.body, /*max_body=*/0));
  return response;
}

namespace {

void append_headers(const HeaderMap& headers, std::string* out) {
  for (const auto& [name, value] : headers.entries()) {
    *out += name;
    *out += ": ";
    *out += value;
    *out += "\r\n";
  }
}

/// Frames the body headers for a streaming source: Content-Length when
/// the total is known up front, chunked transfer coding otherwise.
void set_streaming_body_headers(const BodySource& source,
                                HeaderMap* headers) {
  if (auto total = source.length()) {
    headers->set("Content-Length", std::to_string(*total));
    headers->remove("Transfer-Encoding");
  } else {
    headers->set("Transfer-Encoding", "chunked");
    headers->remove("Content-Length");
  }
}

/// Chunk-size line upper bound: 16 hex digits + CRLF. The header is
/// formatted into a stack buffer — no per-chunk string allocation.
constexpr size_t kChunkHeaderMax = 16 + 2;

size_t format_chunk_header(char (&buf)[kChunkHeaderMax + 1], size_t n) {
  int len = std::snprintf(buf, sizeof buf, "%zx\r\n", n);
  return static_cast<size_t>(len);
}

/// Bytes coalesced per stream write: 2 body blocks per frame means
/// far fewer reader/writer wakeups on the transport while staying
/// inside the bounded-memory budget — and, critically, at half the
/// in-memory pipe capacity (256 KiB), so a full frame never fills the
/// pipe and the producer and consumer keep overlapping instead of
/// degenerating into write-drain ping-pong.
constexpr size_t kFrameBudget = 2 * kBodyBlockSize;

/// Pooled per-thread frame scratch. A daemon (or client) thread
/// serializes every message through the same buffer, so steady-state
/// framing performs zero heap allocations; capacity is retained across
/// keep-alive requests and bounded by kFrameBudget-sized frames.
std::string& frame_buffer() {
  thread_local std::string frame;
  frame.clear();
  return frame;
}

/// Raw per-thread read buffer for known-length payloads. A plain char
/// array instead of a std::string because string::resize would
/// zero-fill the region before every read overwrites it — a memset of
/// every transferred byte, measurable at memory-bandwidth throughput.
char* payload_scratch() {
  thread_local std::unique_ptr<char[]> scratch(new char[kFrameBudget]);
  return scratch.get();
}

/// A failed transport write below a message boundary means the frame —
/// head, chunk, or body block — left the process only partially, and
/// the connection is unusable. Whatever the stream reported, the
/// caller-visible contract is "connection lost, safe to retry on a
/// fresh connection": map to kUnavailable so retry policies treat a
/// half-emitted frame exactly like a peer reset instead of surfacing
/// a transport-specific (possibly non-retryable) code.
Status frame_write(net::Stream* stream, std::string_view data) {
  Status status = stream->write(data);
  if (status.is_ok() || status.code() == ErrorCode::kUnavailable) {
    return status;
  }
  return Status(ErrorCode::kUnavailable,
                "connection lost mid-frame: " + status.message());
}

/// Pumps a body source onto the wire, coalescing every frame into a
/// single stream write. `frame` arrives holding the already-serialized
/// message head, which rides the first frame — head+body pairs and
/// [size line | payload | CRLF] chunk triples are never split across
/// writes, so a concurrent observer (or a mid-frame connection loss)
/// can never see a torn frame boundary.
///
/// With a known length the payload goes out raw after the head (and a
/// short source is a framing error); otherwise each read becomes one
/// chunk and the final 0-chunk terminator coalesces into the frame of
/// the read that hit end-of-body.
Status write_streamed_body(net::Stream* stream, BodySource& source,
                           std::string& frame) {
  if (auto total = source.length()) {
    // Each read is clamped to the bytes still owed, so a source that
    // misbehaves (e.g. a file that grew after length() was sampled)
    // can never push bytes past the declared Content-Length and
    // corrupt the peer's framing. Payload blocks land in the raw
    // scratch buffer: the first frame's block is appended to the head
    // (one copy, bounded by kFrameBudget) so head+body go out in a
    // single write; every later frame writes straight from scratch —
    // zero copies, zero zero-fill.
    uint64_t sent = 0;
    char* scratch = payload_scratch();
    bool head_pending = true;
    for (;;) {
      size_t want =
          static_cast<size_t>(std::min<uint64_t>(kFrameBudget, *total - sent));
      size_t filled = 0;
      while (filled < want) {
        auto got = source.read(scratch + filled, want - filled);
        if (!got.ok()) return got.status();
        if (got.value() == 0) break;  // short source: error below
        filled += got.value();
      }
      sent += filled;
      if (head_pending) {
        head_pending = false;
        frame.append(scratch, filled);
        DAVPSE_RETURN_IF_ERROR(frame_write(stream, frame));
        frame.clear();
      } else if (filled > 0) {
        DAVPSE_RETURN_IF_ERROR(
            frame_write(stream, std::string_view(scratch, filled)));
      }
      if (filled < want) break;   // source ended early
      if (sent == *total) break;  // body complete
    }
    if (sent != *total) {
      return error(ErrorCode::kInternal,
                   "body source produced " + std::to_string(sent) +
                       " bytes but declared " + std::to_string(*total));
    }
    return Status::ok();
  }
  char* payload = payload_scratch();
  for (;;) {
    auto got = source.read(payload, kFrameBudget);
    if (!got.ok()) return got.status();
    if (got.value() == 0) {
      // End of body: the terminator (and trailing empty trailer
      // section) coalesces into whatever is pending — the head for an
      // empty body, nothing otherwise.
      frame += "0\r\n\r\n";
      return frame_write(stream, frame);
    }
    char header[kChunkHeaderMax + 1];
    frame.append(header, format_chunk_header(header, got.value()));
    frame.append(payload, got.value());
    frame += "\r\n";
    DAVPSE_RETURN_IF_ERROR(frame_write(stream, frame));
    frame.clear();
  }
}

/// Sends an eagerly-buffered body: small bodies coalesce with the head
/// into one write; large ones go out as head + body to avoid copying
/// megabytes into the frame scratch.
Status write_eager_body(net::Stream* stream, const std::string& body,
                        std::string& frame) {
  if (body.size() <= kFrameBudget) {
    frame += body;
    return frame_write(stream, frame);
  }
  DAVPSE_RETURN_IF_ERROR(frame_write(stream, frame));
  return frame_write(stream, body);
}

}  // namespace

Status write_request(net::Stream* stream, const HttpRequest& request) {
  std::string& head = frame_buffer();
  head += request.method;
  head += ' ';
  head += request.target;
  head += ' ';
  head += request.version;
  head += "\r\n";
  HeaderMap headers = request.headers;
  if (request.body_source != nullptr) {
    set_streaming_body_headers(*request.body_source, &headers);
  } else {
    headers.set("Content-Length", std::to_string(request.body.size()));
  }
  append_headers(headers, &head);
  head += "\r\n";
  if (request.body_source != nullptr) {
    return write_streamed_body(stream, *request.body_source, head);
  }
  return write_eager_body(stream, request.body, head);
}

Status write_response(net::Stream* stream, const HttpResponse& response) {
  std::string& head = frame_buffer();
  head += "HTTP/1.1 ";
  head += std::to_string(response.status);
  head += ' ';
  head += reason_phrase(response.status);
  head += "\r\n";
  HeaderMap headers = response.headers;
  if (response.body_source != nullptr) {
    set_streaming_body_headers(*response.body_source, &headers);
  } else {
    headers.set("Content-Length", std::to_string(response.body.size()));
  }
  if (!headers.has("Date")) headers.set("Date", http_date_now());
  if (!headers.has("Server")) headers.set("Server", "davpse/1.0");
  append_headers(headers, &head);
  head += "\r\n";
  if (response.body_source != nullptr) {
    return write_streamed_body(stream, *response.body_source, head);
  }
  return write_eager_body(stream, response.body, head);
}

}  // namespace davpse::http
