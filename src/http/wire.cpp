#include "http/wire.h"

#include <cstring>
#include <ctime>
#include <functional>

#include "util/strings.h"

namespace davpse::http {
namespace {

constexpr size_t kMaxLineLength = 64 * 1024;
constexpr size_t kMaxHeaderCount = 256;

bool is_token_char(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  return c == '!' || c == '#' || c == '$' || c == '%' || c == '&' ||
         c == '\'' || c == '*' || c == '+' || c == '-' || c == '.' ||
         c == '^' || c == '_' || c == '`' || c == '|' || c == '~';
}

std::string http_date_now() {
  char buf[64];
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof buf, "%a, %d %b %Y %H:%M:%S GMT", &tm_utc);
  return buf;
}

}  // namespace

Status WireReader::fill() {
  // Compact the consumed prefix occasionally to bound memory.
  if (buffer_pos_ > 0 && buffer_pos_ == buffer_.size()) {
    buffer_.clear();
    buffer_pos_ = 0;
  } else if (buffer_pos_ > 1 << 20) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  char chunk[16384];
  auto got = stream_->read(chunk, sizeof chunk);
  if (!got.ok()) return got.status();
  if (got.value() == 0) {
    return error(ErrorCode::kUnavailable, "connection closed");
  }
  buffer_.append(chunk, got.value());
  return Status::ok();
}

Result<std::string> WireReader::read_line() {
  for (;;) {
    auto eol = buffer_.find('\n', buffer_pos_);
    if (eol != std::string::npos) {
      size_t len = eol - buffer_pos_;
      std::string line = buffer_.substr(buffer_pos_, len);
      buffer_pos_ = eol + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() - buffer_pos_ > kMaxLineLength) {
      return Status(ErrorCode::kMalformed, "header line too long");
    }
    DAVPSE_RETURN_IF_ERROR(fill());
  }
}

Status WireReader::read_exact_buffered(char* out, size_t n) {
  size_t copied = 0;
  while (copied < n) {
    if (buffer_pos_ < buffer_.size()) {
      size_t available = buffer_.size() - buffer_pos_;
      size_t chunk = std::min(available, n - copied);
      std::memcpy(out + copied, buffer_.data() + buffer_pos_, chunk);
      buffer_pos_ += chunk;
      copied += chunk;
      continue;
    }
    // Large bodies: read straight into the caller's buffer.
    auto got = stream_->read(out + copied, n - copied);
    if (!got.ok()) return got.status();
    if (got.value() == 0) {
      return error(ErrorCode::kUnavailable, "EOF inside message body");
    }
    copied += got.value();
  }
  return Status::ok();
}

namespace {

Status parse_header_block(const std::function<Result<std::string>()>& next_line,
                          HeaderMap* headers) {
  for (;;) {
    auto line = next_line();
    if (!line.ok()) return line.status();
    if (line.value().empty()) return Status::ok();
    if (headers->size() >= kMaxHeaderCount) {
      return error(ErrorCode::kMalformed, "too many headers");
    }
    const std::string& raw = line.value();
    auto colon = raw.find(':');
    if (colon == std::string::npos || colon == 0) {
      return error(ErrorCode::kMalformed, "malformed header line: " + raw);
    }
    std::string_view name(raw.data(), colon);
    for (char c : name) {
      if (!is_token_char(c)) {
        return error(ErrorCode::kMalformed,
                     "bad header field name: " + std::string(name));
      }
    }
    std::string_view value = trim(std::string_view(raw).substr(colon + 1));
    headers->add(name, value);
  }
}

}  // namespace

Result<std::string> WireReader::read_body(const HeaderMap& headers,
                                          uint64_t max_body) {
  auto transfer = headers.get("Transfer-Encoding");
  if (transfer && !iequals(trim(*transfer), "identity")) {
    if (!iequals(trim(*transfer), "chunked")) {
      return Status(ErrorCode::kUnsupported,
                    "unsupported transfer coding: " + std::string(*transfer));
    }
    std::string body;
    for (;;) {
      auto size_line = read_line();
      if (!size_line.ok()) return size_line.status();
      // Chunk size is hex, possibly with extensions after ';'.
      std::string_view digits(size_line.value());
      auto semi = digits.find(';');
      if (semi != std::string_view::npos) digits = digits.substr(0, semi);
      digits = trim(digits);
      uint64_t chunk_size = 0;
      if (digits.empty()) {
        return Status(ErrorCode::kMalformed, "empty chunk size");
      }
      for (char c : digits) {
        int v;
        if (c >= '0' && c <= '9') {
          v = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          v = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          v = c - 'A' + 10;
        } else {
          return Status(ErrorCode::kMalformed, "bad chunk size");
        }
        chunk_size = chunk_size * 16 + static_cast<uint64_t>(v);
      }
      if (chunk_size == 0) {
        // Trailer section: read until blank line.
        for (;;) {
          auto trailer = read_line();
          if (!trailer.ok()) return trailer.status();
          if (trailer.value().empty()) break;
        }
        return body;
      }
      if (max_body != 0 && body.size() + chunk_size > max_body) {
        return Status(ErrorCode::kTooLarge, "chunked body exceeds limit");
      }
      size_t old_size = body.size();
      body.resize(old_size + chunk_size);
      DAVPSE_RETURN_IF_ERROR(
          read_exact_buffered(body.data() + old_size, chunk_size));
      char crlf[2];
      DAVPSE_RETURN_IF_ERROR(read_exact_buffered(crlf, 2));
      if (crlf[0] != '\r' || crlf[1] != '\n') {
        return Status(ErrorCode::kMalformed, "missing CRLF after chunk");
      }
    }
  }
  auto length = headers.get_uint("Content-Length");
  if (!length || *length == 0) return std::string();
  if (max_body != 0 && *length > max_body) {
    return Status(ErrorCode::kTooLarge,
                  "declared body of " + std::to_string(*length) +
                      " bytes exceeds limit of " + std::to_string(max_body));
  }
  std::string body(*length, '\0');
  DAVPSE_RETURN_IF_ERROR(read_exact_buffered(body.data(), body.size()));
  return body;
}

Result<HttpRequest> WireReader::read_request(uint64_t max_body) {
  auto start = read_line();
  if (!start.ok()) return start.status();
  // Tolerate a stray blank line between pipelined requests.
  while (start.ok() && start.value().empty()) {
    start = read_line();
    if (!start.ok()) return start.status();
  }
  auto parts = split(start.value(), ' ');
  if (parts.size() != 3) {
    return Status(ErrorCode::kMalformed,
                  "malformed request line: " + start.value());
  }
  HttpRequest request;
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  for (char c : request.method) {
    if (!is_token_char(c)) {
      return Status(ErrorCode::kMalformed, "bad method token");
    }
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status(ErrorCode::kUnsupported,
                  "unsupported version: " + request.version);
  }
  DAVPSE_RETURN_IF_ERROR(parse_header_block(
      [this] { return read_line(); }, &request.headers));
  auto body = read_body(request.headers, max_body);
  if (!body.ok()) return body.status();
  request.body = std::move(body).value();
  return request;
}

Result<HttpResponse> WireReader::read_response() {
  auto start = read_line();
  if (!start.ok()) return start.status();
  const std::string& line = start.value();
  // "HTTP/1.1 207 Multi-Status"
  if (!starts_with(line, "HTTP/1.")) {
    return Status(ErrorCode::kMalformed, "malformed status line: " + line);
  }
  auto first_space = line.find(' ');
  if (first_space == std::string::npos || first_space + 4 > line.size()) {
    return Status(ErrorCode::kMalformed, "malformed status line: " + line);
  }
  int status = 0;
  for (size_t i = first_space + 1; i < first_space + 4; ++i) {
    if (line[i] < '0' || line[i] > '9') {
      return Status(ErrorCode::kMalformed, "malformed status code");
    }
    status = status * 10 + (line[i] - '0');
  }
  HttpResponse response;
  response.status = status;
  DAVPSE_RETURN_IF_ERROR(parse_header_block(
      [this] { return read_line(); }, &response.headers));
  // 204/304 and 1xx have no body by definition.
  if (status == 204 || status == 304 || (status >= 100 && status < 200)) {
    return response;
  }
  auto body = read_body(response.headers, /*max_body=*/0);
  if (!body.ok()) return body.status();
  response.body = std::move(body).value();
  return response;
}

namespace {

void append_headers(const HeaderMap& headers, std::string* out) {
  for (const auto& [name, value] : headers.entries()) {
    *out += name;
    *out += ": ";
    *out += value;
    *out += "\r\n";
  }
}

}  // namespace

Status write_request(net::Stream* stream, const HttpRequest& request) {
  std::string head = request.method + " " + request.target + " " +
                     request.version + "\r\n";
  HeaderMap headers = request.headers;
  headers.set("Content-Length", std::to_string(request.body.size()));
  append_headers(headers, &head);
  head += "\r\n";
  DAVPSE_RETURN_IF_ERROR(stream->write(head));
  if (!request.body.empty()) {
    DAVPSE_RETURN_IF_ERROR(stream->write(request.body));
  }
  return Status::ok();
}

Status write_response(net::Stream* stream, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     std::string(reason_phrase(response.status)) + "\r\n";
  HeaderMap headers = response.headers;
  headers.set("Content-Length", std::to_string(response.body.size()));
  if (!headers.has("Date")) headers.set("Date", http_date_now());
  if (!headers.has("Server")) headers.set("Server", "davpse/1.0");
  append_headers(headers, &head);
  head += "\r\n";
  DAVPSE_RETURN_IF_ERROR(stream->write(head));
  if (!response.body.empty()) {
    DAVPSE_RETURN_IF_ERROR(stream->write(response.body));
  }
  return Status::ok();
}

}  // namespace davpse::http
