#include "http/auth.h"

#include "util/base64.h"
#include "util/strings.h"

namespace davpse::http {

std::string basic_auth_header(const Credentials& credentials) {
  return "Basic " +
         base64_encode(credentials.user + ":" + credentials.password);
}

std::optional<Credentials> parse_basic_auth(const HeaderMap& headers) {
  auto value = headers.get("Authorization");
  if (!value) return std::nullopt;
  auto trimmed = trim(*value);
  constexpr std::string_view kPrefix = "Basic ";
  if (trimmed.size() <= kPrefix.size() ||
      !iequals(trimmed.substr(0, kPrefix.size()), kPrefix)) {
    return std::nullopt;
  }
  std::string decoded;
  if (!base64_decode(trim(trimmed.substr(kPrefix.size())), &decoded)) {
    return std::nullopt;
  }
  auto colon = decoded.find(':');
  if (colon == std::string::npos) return std::nullopt;
  return Credentials{decoded.substr(0, colon), decoded.substr(colon + 1)};
}

bool BasicAuthenticator::authorize(const HttpRequest& request) const {
  if (!enabled()) return true;
  auto credentials = parse_basic_auth(request.headers);
  if (!credentials) return false;
  auto it = accounts_.find(credentials->user);
  return it != accounts_.end() && it->second == credentials->password;
}

HttpResponse BasicAuthenticator::challenge() {
  HttpResponse response = HttpResponse::make(
      kUnauthorized, "authentication required\n");
  response.headers.set("WWW-Authenticate", "Basic realm=\"davpse\"");
  return response;
}

}  // namespace davpse::http
