#include "http/client.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "util/clock.h"

namespace davpse::http {
namespace {

/// Applies the deprecated ClientConfig::max_retries forwarding alias.
ClientConfig normalized(ClientConfig config) {
  if (config.max_retries >= 0) {
    config.retry.max_attempts = config.max_retries + 1;
  }
  return config;
}

/// Deterministic nonzero jitter seed derived from the metric label, so
/// two clients with distinct labels draw distinct backoff sequences.
uint64_t label_seed(const std::string& label) {
  return std::hash<std::string>{}(label) | 1;
}

/// Forwards to the caller's sink while counting the bytes delivered,
/// so the retry logic can tell whether the sink is still untouched.
class CountingBodySink final : public BodySink {
 public:
  CountingBodySink(BodySink* inner, uint64_t* bytes)
      : inner_(inner), bytes_(bytes) {}

  Status write(std::string_view data) override {
    DAVPSE_RETURN_IF_ERROR(inner_->write(data));
    *bytes_ += data.size();
    return Status::ok();
  }

  Status finish() override { return inner_->finish(); }

 private:
  BodySink* inner_;
  uint64_t* bytes_;
};

}  // namespace

HttpClient::HttpClient(ClientConfig config, net::Network* network)
    : config_(normalized(std::move(config))),
      network_(network != nullptr ? *network : net::Network::instance()),
      metrics_(obs::registry_or_global(config_.metrics)),
      connects_metric_(metrics_.counter(config_.connect_label + ".connects")),
      requests_metric_(metrics_.counter(config_.connect_label + ".requests")),
      retries_metric_(metrics_.counter(config_.connect_label + ".retries")),
      request_seconds_(
          metrics_.histogram(config_.connect_label + ".request_seconds")),
      backoff_seconds_(
          metrics_.histogram(config_.connect_label + ".backoff_seconds")),
      backoff_rng_(label_seed(config_.connect_label)) {}

HttpClient::~HttpClient() = default;

Status HttpClient::ensure_connected() {
  if (connection_ != nullptr) return Status::ok();
  auto stream = network_.connect(config_.endpoint);
  if (!stream.ok()) return stream.status();
  connection_ = std::move(stream).value();
  reader_ = std::make_unique<WireReader>(connection_.get());
  accounted_bytes_ = 0;
  ++connections_opened_;
  connects_metric_.add(1);
  if (model_ != nullptr) model_->add_round_trips(1);  // connection setup
  return Status::ok();
}

void HttpClient::reset_connection() {
  account_traffic();
  reader_.reset();
  connection_.reset();
}

void HttpClient::account_traffic() {
  if (connection_ == nullptr) return;
  const net::TrafficCounter* counter = connection_->traffic();
  if (counter == nullptr) return;
  uint64_t total = counter->total();
  if (model_ != nullptr && total > accounted_bytes_) {
    model_->add_bytes(total - accounted_bytes_);
  }
  accounted_bytes_ = total;
}

Result<HttpResponse> HttpClient::execute_once(const HttpRequest& request,
                                              BodySink* sink,
                                              bool* reused_connection,
                                              uint64_t* sink_bytes,
                                              uint64_t* sent_bytes,
                                              double attempt_timeout) {
  *reused_connection = connection_ != nullptr;
  *sent_bytes = 0;
  DAVPSE_RETURN_IF_ERROR(ensure_connected());
  // Each attempt owns the connection's read timeout (0 disables), so a
  // deadline-capped attempt never inherits a stale bound.
  connection_->set_read_timeout(attempt_timeout);
  uint64_t wire_before = connection_->bytes_written();
  Status wrote = write_request(connection_.get(), request);
  *sent_bytes = connection_->bytes_written() - wire_before;
  if (!wrote.is_ok()) {
    // A server that rejects mid-upload (413 + close) has already
    // buffered its answer even though our send failed; read it before
    // reporting the error, as a socket client would after EPIPE. Only
    // an error status can arrive this way — anything else (e.g. a dead
    // keep-alive connection with nothing buffered) degrades to the
    // original write error, keeping the replay path intact.
    if (wrote.code() == ErrorCode::kUnavailable) {
      auto early = reader_->read_response();
      if (early.ok() && early.value().status >= 400) {
        ++requests_sent_;
        requests_metric_.add(1);
        if (model_ != nullptr) model_->add_round_trips(1);
        account_traffic();
        return early;
      }
    }
    return wrote;
  }
  Result<HttpResponse> response = Status(ErrorCode::kInternal, "unset");
  if (sink == nullptr) {
    response = reader_->read_response();
  } else {
    response = reader_->read_response_head();
    if (response.ok()) {
      int status = response.value().status;
      bool has_body =
          status != 204 && status != 304 && (status < 100 || status >= 200);
      if (has_body) {
        auto source =
            reader_->open_body(response.value().headers, /*max_body=*/0);
        if (!source.ok()) {
          response = source.status();
        } else if (status >= 200 && status < 300) {
          // Success body streams to the caller's sink in blocks.
          CountingBodySink counted(sink, sink_bytes);
          auto drained = drain_body(*source.value(), counted);
          if (!drained.ok()) response = drained.status();
        } else {
          // Error bodies are small diagnostics; buffer them as usual.
          StringBodySink buffer(&response.value().body);
          auto drained = drain_body(*source.value(), buffer);
          if (!drained.ok()) response = drained.status();
        }
      }
    }
  }
  ++requests_sent_;
  requests_metric_.add(1);
  if (model_ != nullptr) model_->add_round_trips(1);
  account_traffic();
  return response;
}

Result<HttpResponse> HttpClient::execute(HttpRequest request) {
  return execute(std::move(request), nullptr);
}

Result<HttpResponse> HttpClient::execute(HttpRequest request,
                                         BodySink* sink) {
  request.headers.set("Host", config_.endpoint);
  if (config_.credentials) {
    request.headers.set("Authorization",
                        basic_auth_header(*config_.credentials));
  }
  if (config_.policy == ConnectionPolicy::kPerRequest) {
    request.headers.set("Connection", "close");
  }

  // Trace: join the caller's context when one is installed on this
  // thread, otherwise open a fresh trace for this exchange. The id
  // travels to the server in X-Trace-Id so both halves of the exchange
  // record spans under the same trace.
  std::optional<obs::TraceScope> own_scope;
  const obs::TraceContext* context = obs::TraceContext::current();
  if (context == nullptr) own_scope.emplace(obs::generate_trace_id());
  request.headers.set("X-Trace-Id", context != nullptr
                                        ? context->trace_id()
                                        : own_scope->trace_id());
  obs::Span span(config_.connect_label + "." + request.method);
  double start = wall_time_seconds();

  const RetryPolicy& policy = config_.retry;
  Deadline deadline = policy.start_deadline();
  Result<HttpResponse> response = Status(ErrorCode::kInternal, "unset");
  int attempt = 0;
  while (true) {
    ++attempt;
    bool reused = false;
    uint64_t sink_bytes = 0;
    uint64_t sent_bytes = 0;
    double attempt_timeout = policy.attempt_timeout_seconds;
    if (!deadline.is_never()) {
      // Cap each attempt so the whole call lands inside the budget.
      double left = deadline.remaining_seconds();
      if (left > 0) {
        attempt_timeout =
            attempt_timeout > 0 ? std::min(attempt_timeout, left) : left;
      }
    }
    response = execute_once(request, sink, &reused, &sink_bytes, &sent_bytes,
                            attempt_timeout);

    // Transport failures replay only when safe: the request provably
    // never left (zero wire bytes this attempt — covers refused
    // connects and dead keep-alive connections, whose buffered writes
    // fail outright), or the method is replay-safe. A 503 is always
    // replayable — the server shed the request before acting on it.
    bool transport_retry =
        !response.ok() && response.status().is_retryable() &&
        (sent_bytes == 0 || method_is_replay_safe(request.method));
    bool shed_retry =
        response.ok() && response.value().status == kServiceUnavailable;
    if (!transport_retry && !shed_retry) break;
    if (attempt >= policy.max_attempts) break;
    // The response sink must be untouched (a replay would append the
    // full body after partial bytes already delivered) and a streaming
    // request body must rewind.
    if (sink_bytes != 0) break;
    if (request.body_source != nullptr && !request.body_source->rewind()) {
      break;
    }
    double wait =
        policy.backoff_before_attempt(attempt, backoff_rng_.uniform_real(0, 1));
    if (shed_retry) {
      // Retry-After is a floor under our own backoff, never a ceiling.
      if (auto after = response.value().headers.get_uint("Retry-After")) {
        wait = std::max(wait, static_cast<double>(*after));
      }
    }
    if (!deadline.allows(wait)) break;
    retries_metric_.add(1);
    backoff_seconds_.observe(wait);
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    reset_connection();
  }
  request_seconds_.observe(wall_time_seconds() - start);
  if (!response.ok()) {
    reset_connection();
    return response;
  }
  if (config_.policy == ConnectionPolicy::kPerRequest ||
      !response.value().keep_alive()) {
    reset_connection();
  }
  return response;
}

Result<std::vector<HttpResponse>> HttpClient::execute_pipelined(
    std::vector<HttpRequest> requests) {
  for (HttpRequest& request : requests) {
    request.headers.set("Host", config_.endpoint);
    if (config_.credentials) {
      request.headers.set("Authorization",
                          basic_auth_header(*config_.credentials));
    }
  }
  std::vector<HttpResponse> responses;
  responses.reserve(requests.size());
  size_t next = 0;  // first request not yet answered
  int reconnects = 0;
  while (next < requests.size()) {
    DAVPSE_RETURN_IF_ERROR(ensure_connected());
    // Write the whole outstanding tail before reading anything.
    for (size_t i = next; i < requests.size(); ++i) {
      Status written = write_request(connection_.get(), requests[i]);
      if (!written.is_ok()) break;  // server may have closed; read below
    }
    if (model_ != nullptr) model_->add_round_trips(1);  // one batch RTT
    bool closed = false;
    while (next < requests.size()) {
      auto response = reader_->read_response();
      if (!response.ok()) {
        closed = true;
        break;
      }
      ++requests_sent_;
      requests_metric_.add(1);
      bool keep = response.value().keep_alive();
      responses.push_back(std::move(response).value());
      ++next;
      if (!keep) {
        closed = true;
        break;
      }
    }
    account_traffic();
    if (closed && next < requests.size()) {
      reset_connection();
      if (++reconnects > 8) {
        return Status(ErrorCode::kUnavailable,
                      "pipeline aborted: server keeps closing mid-batch");
      }
    }
  }
  return responses;
}

Result<HttpResponse> HttpClient::get(std::string_view path) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::string(path);
  return execute(std::move(request));
}

Result<HttpResponse> HttpClient::put(std::string_view path, std::string body,
                                     std::string_view content_type) {
  // The body is moved into a rewindable source, never copied again —
  // the wire writer reads blocks straight out of it, and a dead
  // keep-alive retry rewinds rather than re-buffering.
  return put_from(path, std::make_shared<StringBodySource>(std::move(body)),
                  content_type);
}

Result<HttpResponse> HttpClient::del(std::string_view path) {
  HttpRequest request;
  request.method = "DELETE";
  request.target = std::string(path);
  return execute(std::move(request));
}

Result<HttpResponse> HttpClient::get_to(std::string_view path,
                                        BodySink* sink) {
  HttpRequest request;
  request.method = "GET";
  request.target = std::string(path);
  return execute(std::move(request), sink);
}

Result<HttpResponse> HttpClient::put_from(std::string_view path,
                                          std::shared_ptr<BodySource> body,
                                          std::string_view content_type) {
  HttpRequest request;
  request.method = "PUT";
  request.target = std::string(path);
  request.body_source = std::move(body);
  request.headers.set("Content-Type", content_type);
  return execute(std::move(request));
}

}  // namespace davpse::http
