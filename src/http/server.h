// HTTP/1.1 server with an Apache-like daemon pool. The paper's servers
// ran with "persistent connections with limits of 100 connections per
// minute, 15 seconds between requests, and a minimum of 5 daemons";
// ServerConfig defaults mirror that (the per-connection request cap
// standing in for the per-minute cap, which only makes sense against a
// real wall clock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "http/auth.h"
#include "http/message.h"
#include "net/network.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "util/status.h"

namespace davpse::http {

/// Application hook: one call per request. Must be thread-safe — the
/// daemon pool invokes it concurrently.
class Handler {
 public:
  virtual ~Handler() = default;
  virtual HttpResponse handle(const HttpRequest& request) = 0;

  /// Streaming opt-in, asked per request after the head is parsed but
  /// before the body is read. Return true and handle() receives the
  /// live wire decoder as request.body_source (request.body empty) —
  /// the handler drains it in blocks instead of the server buffering
  /// the body. Default keeps the eager contract: the server reads the
  /// whole body into request.body first.
  virtual bool wants_body_stream(const HttpRequest& head) {
    (void)head;
    return false;
  }
};

struct ServerConfig {
  std::string endpoint;              // name in the in-memory network
  size_t daemons = 5;                // paper: "a minimum of 5 daemons"
  size_t max_requests_per_connection = 100;
  double keep_alive_timeout_seconds = 15.0;
  uint64_t max_body_bytes = 0;       // 0 = unlimited
  /// Load shedding: when more than this many accepted connections are
  /// waiting for a free daemon, further arrivals are answered 503 +
  /// Retry-After without reading the request and closed (0 = never
  /// shed). Shedding happens on the accept thread, so an overloaded
  /// pool answers "back off" immediately instead of silently queueing.
  size_t max_queue_depth = 0;
  /// Additional ceiling on waiting + in-service connections combined
  /// (0 = unlimited). With a fixed daemon pool this mostly matters when
  /// max_queue_depth is unset.
  size_t max_in_flight = 0;
  /// Advertised in Retry-After on shed responses (whole seconds; the
  /// client's retry loop treats it as a backoff floor).
  int retry_after_seconds = 1;
  /// Per-request read deadline (0 = none): bounds the wait for the
  /// first request line on a fresh connection and every body read, so
  /// a peer that stalls mid-request cannot pin a daemon. A stall after
  /// the head parsed is answered 408 Request Timeout; a connection
  /// that never sends a byte is closed silently. Idle keep-alive gaps
  /// keep using keep_alive_timeout_seconds.
  double request_read_timeout_seconds = 0;
  BasicAuthenticator authenticator;  // empty = auth disabled
  /// Registry receiving "http.server.*" metrics (per-method request
  /// counts and latency histograms, body bytes in/out, connection and
  /// keep-alive reuse counts); nullptr records into
  /// obs::Registry::global().
  obs::Registry* metrics = nullptr;
  /// TraceLog receiving server-side spans; nullptr records into
  /// obs::TraceLog::global().
  obs::TraceLog* trace_log = nullptr;
  /// Tail sampler retaining full span trees for slow requests; nullptr
  /// samples into obs::TailSampler::global().
  obs::TailSampler* tail_sampler = nullptr;
  /// Structured access log: one AccessRecord per completed exchange.
  /// nullptr disables (there is deliberately no global fallback — an
  /// access log writes to disk, which must be opted into). The caller
  /// owns the EventLog and must have start()ed it.
  obs::EventLog* event_log = nullptr;
  /// When true *and* authentication is enabled, GET/HEAD requests under
  /// /.well-known/ (the read-only observability scrapes) bypass the
  /// credential check. Off by default: exposing metrics to anonymous
  /// scrapers is an explicit decision.
  bool unauthenticated_scrape = false;
};

/// Accept loop + fixed pool of daemon threads, each serving whole
/// keep-alive connections. start() returns once the endpoint is bound;
/// stop() (or destruction) joins every thread.
class HttpServer {
 public:
  HttpServer(ServerConfig config, Handler* handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  Status start();
  Status start(net::Network& network);
  void stop();

  const std::string& endpoint() const { return config_.endpoint; }

  /// Requests served since start (all connections).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  /// Answers 503 + Retry-After on the accept thread without reading the
  /// request, then closes. The reply stays readable by the peer (clean
  /// write-side EOF); the peer's own writes fail, which its retry loop
  /// treats as "shed before processing".
  void shed_connection(std::unique_ptr<net::Stream> stream);
  /// `daemon_id` is the serving pool thread's index — it lands in the
  /// access-log records this connection produces. The caller keeps
  /// ownership of the stream: it stays registered in active_streams_
  /// until after this returns, so stop() can abort a blocked read.
  void serve_connection(net::Stream* stream, int daemon_id);

  ServerConfig config_;
  Handler* handler_;
  // Fixed-name metrics resolved once; per-method ones are looked up per
  // request (a shared-lock map hit).
  obs::Registry& metrics_;
  obs::TailSampler& tail_sampler_;
  obs::Counter& bytes_in_metric_;
  obs::Counter& bytes_out_metric_;
  obs::Counter& keepalive_reuse_metric_;
  obs::Counter& connections_metric_;
  obs::Counter& shed_metric_;
  obs::Gauge& in_flight_gauge_;
  /// Per-method counter/histogram cache — no metric-name concatenation
  /// or registry lookups on the request hot path after first sight of
  /// a method.
  obs::PerLabelMetrics request_metrics_;
  std::unique_ptr<net::Listener> listener_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  /// Connections currently inside serve_connection (not queued).
  std::atomic<size_t> in_flight_{0};

  // Simple work queue: accepted connections waiting for a daemon.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<net::Stream>> queue_;

  // Streams currently being served. stop() closes them so a daemon
  // blocked in a keep-alive idle read (up to keep_alive_timeout_seconds)
  // unblocks immediately instead of holding shutdown for the full
  // window. Entries are keys only — the owning daemon erases its entry
  // before destroying the stream.
  std::mutex active_mutex_;
  std::set<net::Stream*> active_streams_;
};

}  // namespace davpse::http
