// HTTP/1.1 server on a readiness-driven reactor core. The paper's
// servers inherited Apache 1.3's thread-per-connection daemon model
// ("a minimum of 5 daemons"), which caps in-flight connections at the
// daemon count: an idle keep-alive peer pins a whole thread for up to
// the 15 s idle window. Here one reactor thread multiplexes every
// connection over the virtual network's Poller — idle connections are
// parked at near-zero cost (a map entry and the pipe buffers) — and
// parsed requests are dispatched to a small worker pool. The paper's
// connection policies (100 requests per connection, 15 s keep-alive
// idle, basic auth) are preserved byte-for-byte; `daemons` lives on as
// the worker-pool knob so existing configs keep their meaning.
//
// Per-connection state machine (each connection owns its WireReader
// across parks, so pipelined bytes are never lost):
//
//   accept ─▶ parked-fresh ──readable──▶ dispatch queue ─▶ worker:
//                 │ deadline               ▲                 read head/body,
//                 ▼                        │ readable         handle, write
//               close                   parked-idle ◀──────── keep-alive
//                                          │ keep-alive        │ close/cap/
//                                          ▼ deadline          ▼ error
//                                        close               close
//
// Ownership: the reactor owns parked connections; a dispatch hands the
// connection to exactly one worker; the worker either parks it back or
// closes it. stop() closes every registered stream, which unblocks
// parked and mid-request connections alike through pipe abort
// semantics — no per-connection timeout wait.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "http/auth.h"
#include "http/message.h"
#include "net/network.h"
#include "net/poller.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "util/status.h"

namespace davpse::http {

/// Application hook: one call per request. Must be thread-safe — the
/// worker pool invokes it concurrently.
class Handler {
 public:
  virtual ~Handler() = default;
  virtual HttpResponse handle(const HttpRequest& request) = 0;

  /// Streaming opt-in, asked per request after the head is parsed but
  /// before the body is read. Return true and handle() receives the
  /// live wire decoder as request.body_source (request.body empty) —
  /// the handler drains it in blocks instead of the server buffering
  /// the body. Default keeps the eager contract: the server reads the
  /// whole body into request.body first.
  virtual bool wants_body_stream(const HttpRequest& head) {
    (void)head;
    return false;
  }
};

struct ServerConfig {
  std::string endpoint;              // name in the in-memory network
  /// Worker-pool size (requests in service concurrently). Historical
  /// name: under the old thread-per-connection model this was the
  /// daemon count, and it keeps that role as the pool knob — but a
  /// worker serves *requests*, not connections, so parked keep-alive
  /// connections no longer occupy one. `workers`, when non-zero,
  /// overrides it under the honest name.
  size_t daemons = 5;                // paper: "a minimum of 5 daemons"
  size_t workers = 0;                // 0 = use `daemons`
  size_t max_requests_per_connection = 100;
  double keep_alive_timeout_seconds = 15.0;
  uint64_t max_body_bytes = 0;       // 0 = unlimited
  /// Load shedding: when more than this many connections are waiting
  /// for a worker to pick up their *first* request, further arrivals
  /// are answered 503 + Retry-After and closed (0 = never shed). The
  /// 503 is written with a single non-blocking write on the reactor
  /// thread — a peer that never reads gets the connection dropped
  /// instead of stalling accepts.
  size_t max_queue_depth = 0;
  /// Additional ceiling on first-request-waiting + worker-active
  /// connections combined (0 = unlimited). Parked idle keep-alive
  /// connections are deliberately NOT counted: they are nearly free
  /// under the reactor, and pricing them like in-service work would
  /// reintroduce the daemon-count ceiling this core removes.
  size_t max_in_flight = 0;
  /// Ceiling on idle keep-alive connections parked in the poller
  /// (0 = unlimited). When full, a connection finishing a request is
  /// closed instead of parked — bounding per-idle-connection memory
  /// under a connection flood while requests keep being served.
  size_t max_parked = 0;
  /// Advertised in Retry-After on shed responses (whole seconds; the
  /// client's retry loop treats it as a backoff floor).
  int retry_after_seconds = 1;
  /// Per-request read deadline (0 = none): bounds the wait for the
  /// first request line on a fresh connection and every body read, so
  /// a peer that stalls mid-request cannot pin a worker. A stall after
  /// the head parsed is answered 408 Request Timeout; a connection
  /// that never sends a byte is closed silently (by the reactor, while
  /// parked — it never cost a worker). Idle keep-alive gaps keep using
  /// keep_alive_timeout_seconds.
  double request_read_timeout_seconds = 0;
  /// Stall watchdog (0 = off): a request whose total service time
  /// exceeds this budget is flagged after completion — the
  /// "http.server.stalled" counter is bumped, the request's trace is
  /// force-retained in the tail sampler (inspectable at
  /// /.well-known/traces regardless of the sampler's thresholds), its
  /// access record carries event="stalled", and a structured warning
  /// is logged with the trace id. Detection, not enforcement: the
  /// response still goes out — read deadlines above bound the only
  /// waits the server can interrupt.
  double stall_budget_seconds = 0;
  BasicAuthenticator authenticator;  // empty = auth disabled
  /// Registry receiving "http.server.*" metrics (per-method request
  /// counts and latency histograms, body bytes in/out, connection and
  /// keep-alive reuse counts, parked/in-flight gauges, poller wakes);
  /// nullptr records into obs::Registry::global().
  obs::Registry* metrics = nullptr;
  /// TraceLog receiving server-side spans; nullptr records into
  /// obs::TraceLog::global().
  obs::TraceLog* trace_log = nullptr;
  /// Tail sampler retaining full span trees for slow requests; nullptr
  /// samples into obs::TailSampler::global().
  obs::TailSampler* tail_sampler = nullptr;
  /// Structured access log: one AccessRecord per completed exchange.
  /// nullptr disables (there is deliberately no global fallback — an
  /// access log writes to disk, which must be opted into). The caller
  /// owns the EventLog and must have start()ed it.
  obs::EventLog* event_log = nullptr;
  /// When true *and* authentication is enabled, GET/HEAD requests under
  /// /.well-known/ (the read-only observability scrapes) bypass the
  /// credential check. Off by default: exposing metrics to anonymous
  /// scrapers is an explicit decision.
  bool unauthenticated_scrape = false;
};

/// Reactor thread + fixed worker pool. start() returns once the
/// endpoint is bound; stop() (or destruction) joins every thread.
class HttpServer {
 public:
  HttpServer(ServerConfig config, Handler* handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  Status start();
  Status start(net::Network& network);
  void stop();

  const std::string& endpoint() const { return config_.endpoint; }

  /// Requests served since start (all connections).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state machine node (defined in server.cpp): the
  /// stream, its WireReader (owned across parks so buffered pipelined
  /// bytes survive), and the served-request count.
  struct Connection;

  /// Reactor thread: drains the poller, admits/sheds accepts, unparks
  /// readable connections into the dispatch queue, expires deadlines.
  void reactor_loop();
  /// Worker threads: serve dispatched requests, then park the
  /// connection back (keep-alive) or close it.
  void worker_loop(int worker_id);
  void drain_accepts();
  /// Answers 503 + Retry-After with one bounded non-blocking write on
  /// the reactor thread, then closes. On would-block the reply is
  /// dropped — a non-reading peer costs nothing but its own 503.
  void shed_connection(std::unique_ptr<net::Stream> stream);
  /// Parks `conn` in the poller under a fresh token. `deadline` is an
  /// absolute wall time (<= 0: park without expiry); `enforce_parked_cap`
  /// applies max_parked (workers re-parking idle connections enforce it;
  /// fresh accepts are governed by the shed limits instead). Returns
  /// false — caller must close — when stopping or at the cap.
  bool park(std::shared_ptr<Connection> conn, double deadline,
            bool enforce_parked_cap);
  void dispatch(std::shared_ptr<Connection> conn);
  /// Closes `conn` and drops it from the registry.
  void retire(const std::shared_ptr<Connection>& conn);
  /// Serves requests off `conn` until it must close (false) or goes
  /// keep-alive idle with nothing buffered (true → caller parks it).
  bool serve_requests(Connection& conn, int worker_id);

  ServerConfig config_;
  Handler* handler_;
  // Fixed-name metrics resolved once; per-method ones are looked up per
  // request (a shared-lock map hit).
  obs::Registry& metrics_;
  obs::TailSampler& tail_sampler_;
  obs::Counter& bytes_in_metric_;
  obs::Counter& bytes_out_metric_;
  obs::Counter& keepalive_reuse_metric_;
  obs::Counter& connections_metric_;
  obs::Counter& shed_metric_;
  obs::Counter& poller_wakes_metric_;
  /// Requests that blew the stall budget (see
  /// ServerConfig::stall_budget_seconds).
  obs::Counter& stalled_metric_;
  /// Worker-active connections (in service, not parked/queued). The
  /// worker increments on pickup and decrements on park/close along
  /// every path — shed and reactor-expired connections never touch it,
  /// so it provably returns to zero when the server drains.
  obs::Gauge& in_flight_gauge_;
  /// Idle connections parked in the poller (fresh + keep-alive).
  obs::Gauge& parked_gauge_;
  /// Scheduler telemetry. queue_wait: dispatch-enqueue → worker pickup
  /// (the run-queue delay a request pays before any byte is parsed).
  /// parked_age: how long a connection sat parked before readiness or
  /// expiry unparked it. dispatch_depth: current run-queue length.
  /// workers: pool size (constant after start; lets scrapes derive
  /// utilization without knowing the config). worker_utilization_ppm:
  /// active workers as parts-per-million of the pool, updated at every
  /// pickup/release.
  obs::Histogram& queue_wait_histogram_;
  obs::Histogram& parked_age_histogram_;
  obs::Gauge& dispatch_depth_gauge_;
  obs::Gauge& workers_gauge_;
  obs::Gauge& utilization_gauge_;
  /// Per-method counter/histogram cache — no metric-name concatenation
  /// or registry lookups on the request hot path after first sight of
  /// a method.
  obs::PerLabelMetrics request_metrics_;

  net::Poller poller_;
  std::unique_ptr<net::Listener> listener_;
  std::vector<std::thread> threads_;
  size_t worker_count_ = 1;  // fixed by start(); read by utilization
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<size_t> active_{0};

  /// Guards the connection registry, the parked map, deadlines, and
  /// the first-request admission counter. Never held while calling
  /// into a stream or the poller's wait.
  std::mutex state_mutex_;
  /// Every live connection (parked, queued, or worker-held) — stop()
  /// closes these streams to unblock everything at once.
  std::unordered_map<Connection*, std::shared_ptr<Connection>> conns_;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> parked_;
  /// Absolute wall deadline -> parked token; lazily pruned (an entry
  /// whose token is no longer parked is skipped).
  std::multimap<double, uint64_t> deadlines_;
  uint64_t next_token_ = 1;  // 0 is the listener's token
  /// Connections accepted whose first request no worker has picked up
  /// yet — the shed threshold (the reactor-core analogue of the old
  /// accept queue depth).
  size_t pending_first_ = 0;

  std::mutex dispatch_mutex_;
  std::condition_variable dispatch_cv_;
  std::deque<std::shared_ptr<Connection>> dispatch_;
};

}  // namespace davpse::http
