// Streaming body abstraction: the bounded-memory data path between the
// repository's files and the PSE client cache. A BodySource produces
// body bytes in blocks; a BodySink consumes them. Every layer of the
// stack (wire framing, HTTP server/client, DAV server/client, storage
// cache) moves bodies through these interfaces in ~64 KiB blocks, so a
// multi-hundred-MB transfer never materializes the object in RAM. The
// eager std::string APIs remain as thin adapters over this core.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace davpse::http {

/// Block size used by all drain loops; peak per-request buffering is
/// O(kBodyBlockSize), independent of object size.
inline constexpr size_t kBodyBlockSize = 64 * 1024;

/// Pull-based producer of body bytes. Sources are single-pass and
/// stateful; rewind() (when supported) resets to the beginning so a
/// client can replay a body after a dead keep-alive connection.
class BodySource {
 public:
  virtual ~BodySource() = default;

  /// Reads up to `max` bytes into `buf`; returns the count, 0 at end
  /// of body. Short reads are allowed at any point.
  virtual Result<size_t> read(char* buf, size_t max) = 0;

  /// Total body size when known up front (drives Content-Length);
  /// nullopt means unknown (sent with chunked transfer coding).
  virtual std::optional<uint64_t> length() const { return std::nullopt; }

  /// Resets to the start of the body; false if this source cannot be
  /// replayed (e.g. a live wire decoder).
  virtual bool rewind() { return false; }
};

/// Push-based consumer of body bytes. finish() signals end of body so
/// sinks with commit semantics (atomic file replace) can complete.
class BodySink {
 public:
  virtual ~BodySink() = default;
  virtual Status write(std::string_view data) = 0;
  virtual Status finish() { return Status::ok(); }
};

/// Pumps `source` into `sink` in `block`-sized reads and calls
/// finish(). Returns the total bytes moved.
Result<uint64_t> drain_body(BodySource& source, BodySink& sink,
                            size_t block = kBodyBlockSize);

/// Discards the remainder of `source` (connection framing: a wire body
/// must be fully consumed before the next message can be read).
Status discard_body(BodySource& source, size_t block = kBodyBlockSize);

// -- in-memory adapters ------------------------------------------------

/// Owns a string and serves it in block-sized views. Rewindable.
class StringBodySource final : public BodySource {
 public:
  explicit StringBodySource(std::string body) : body_(std::move(body)) {}

  Result<size_t> read(char* buf, size_t max) override;
  std::optional<uint64_t> length() const override { return body_.size(); }
  bool rewind() override {
    pos_ = 0;
    return true;
  }

 private:
  std::string body_;
  size_t pos_ = 0;
};

/// Accumulates into a caller-owned string; `max_bytes` (0 = unlimited)
/// yields kTooLarge once exceeded — used by the eager adapters so a
/// buffered read can never balloon past the configured limit.
class StringBodySink final : public BodySink {
 public:
  explicit StringBodySink(std::string* out, uint64_t max_bytes = 0)
      : out_(out), max_bytes_(max_bytes) {}

  Status write(std::string_view data) override;

 private:
  std::string* out_;
  uint64_t max_bytes_;
};

/// Swallows everything (framing drains).
class NullBodySink final : public BodySink {
 public:
  Status write(std::string_view) override { return Status::ok(); }
};

// -- file adapters -----------------------------------------------------

/// Streams a file in blocks; length is the file size at open time.
class FileBodySource final : public BodySource {
 public:
  /// kNotFound if the file cannot be opened.
  static Result<std::unique_ptr<FileBodySource>> open(
      const std::filesystem::path& path);

  Result<size_t> read(char* buf, size_t max) override;
  std::optional<uint64_t> length() const override { return size_; }
  bool rewind() override;

 private:
  FileBodySource(std::ifstream in, std::filesystem::path path,
                 uint64_t size)
      : in_(std::move(in)), path_(std::move(path)), size_(size) {}

  std::ifstream in_;
  std::filesystem::path path_;
  uint64_t size_;
};

/// Streams into `<path>.tmp` and atomically renames on finish(), so a
/// failed transfer never leaves a half-written document behind. The
/// temp file is removed if the sink is destroyed unfinished.
class FileBodySink final : public BodySink {
 public:
  explicit FileBodySink(std::filesystem::path path);
  ~FileBodySink() override;

  Status write(std::string_view data) override;
  Status finish() override;

  uint64_t bytes_written() const { return bytes_; }

 private:
  std::filesystem::path path_;
  std::filesystem::path tmp_;
  std::ofstream out_;
  uint64_t bytes_ = 0;
  bool finished_ = false;
  bool open_failed_ = false;
};

// -- verification ------------------------------------------------------

/// Rolling FNV-1a 64-bit digest over the bytes seen — lets tests and
/// benches assert end-to-end content integrity without ever holding
/// the body.
class DigestBodySink final : public BodySink {
 public:
  Status write(std::string_view data) override {
    for (unsigned char c : data) {
      hash_ ^= c;
      hash_ *= 1099511628211ull;
    }
    bytes_ += data.size();
    return Status::ok();
  }

  uint64_t digest() const { return hash_; }
  uint64_t bytes_seen() const { return bytes_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
  uint64_t bytes_ = 0;
};

}  // namespace davpse::http
