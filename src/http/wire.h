// HTTP/1.1 wire framing over a Stream: request/status lines, header
// blocks, and bodies via Content-Length or chunked transfer coding.
//
// Framing is split into head + body so bodies can stream: read the
// head, then pull the body incrementally through a WireBodySource in
// fixed-size blocks. The whole-message read_request()/read_response()
// remain as eager adapters over that split.
#pragma once

#include <memory>

#include "http/body.h"
#include "http/message.h"
#include "net/stream.h"
#include "util/status.h"

namespace davpse::http {

class WireBodySource;

/// Buffered reader that frames HTTP messages off a stream. One reader
/// per connection; it owns the read buffer across keep-alive requests.
class WireReader {
 public:
  explicit WireReader(net::Stream* stream) : stream_(stream) {}

  /// Whole-message adapters: head + body drained into `body`.
  /// `max_body` bounds acceptable bodies (0 = unlimited); oversized
  /// bodies yield kTooLarge as soon as the limit is crossed during
  /// decode (connection must be closed by the caller).
  Result<HttpRequest> read_request(uint64_t max_body = 0);
  Result<HttpResponse> read_response();

  /// Streaming path: request line / status line + headers only; the
  /// body stays on the wire until pulled via open_body().
  Result<HttpRequest> read_request_head();
  Result<HttpResponse> read_response_head();

  /// Incremental decoder for the message body described by `headers`
  /// (chunked transfer coding or Content-Length; absent/zero length =
  /// empty body). The source borrows this reader: it must be fully
  /// drained (or the connection abandoned) before the next message is
  /// read. `max_body` (0 = unlimited) aborts the decode with kTooLarge
  /// the moment the limit is crossed — *before* the body is buffered.
  Result<std::unique_ptr<BodySource>> open_body(const HeaderMap& headers,
                                                uint64_t max_body);

  /// Bytes already pulled off the stream but not yet consumed by the
  /// framing layer. Non-zero means (part of) the next message sits in
  /// this reader where stream-level readiness polling cannot see it —
  /// the reactor must not park such a connection, or a fully pipelined
  /// request would never wake it.
  size_t buffered_bytes() const { return buffer_.size() - buffer_pos_; }

 private:
  friend class WireBodySource;

  /// Reads through the next CRLF; the line is returned without it.
  Result<std::string> read_line();
  Status fill();  // pulls more bytes into the buffer
  Status read_exact_buffered(char* out, size_t n);
  /// Reads 1..max bytes (buffer first, then straight from the
  /// stream); kUnavailable on EOF.
  Result<size_t> read_some_buffered(char* out, size_t max);

  net::Stream* stream_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
};

/// Serializes and sends a request. Streams body_source when present
/// (Content-Length if the length is known, chunked otherwise);
/// otherwise sets Content-Length from the eager body.
Status write_request(net::Stream* stream, const HttpRequest& request);

/// Serializes and sends a response. Sets Content-Length (or chunked
/// coding) and Date; streams body_source when present.
Status write_response(net::Stream* stream, const HttpResponse& response);

}  // namespace davpse::http
