// HTTP/1.1 wire framing over a Stream: request/status lines, header
// blocks, and bodies via Content-Length or chunked transfer coding.
#pragma once

#include <memory>

#include "http/message.h"
#include "net/stream.h"
#include "util/status.h"

namespace davpse::http {

/// Buffered reader that frames HTTP messages off a stream. One reader
/// per connection; it owns the read buffer across keep-alive requests.
class WireReader {
 public:
  explicit WireReader(net::Stream* stream) : stream_(stream) {}

  /// `max_body` bounds acceptable bodies (0 = unlimited); oversized
  /// bodies yield kTooLarge after draining is abandoned (connection
  /// must be closed by the caller).
  Result<HttpRequest> read_request(uint64_t max_body = 0);
  Result<HttpResponse> read_response();

 private:
  /// Reads through the next CRLF; the line is returned without it.
  Result<std::string> read_line();
  Status fill();  // pulls more bytes into the buffer
  Result<std::string> read_body(const HeaderMap& headers, uint64_t max_body);
  Status read_exact_buffered(char* out, size_t n);

  net::Stream* stream_;
  std::string buffer_;
  size_t buffer_pos_ = 0;
};

/// Serializes and sends a request. Sets Content-Length from the body.
Status write_request(net::Stream* stream, const HttpRequest& request);

/// Serializes and sends a response. Sets Content-Length and Date.
Status write_response(net::Stream* stream, const HttpResponse& response);

}  // namespace davpse::http
