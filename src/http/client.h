// HTTP/1.1 client with two connection policies — persistent (reuse one
// keep-alive connection) and per-request (reconnect every time). The
// paper reports the surprising result that reconnecting was *faster*
// than persistent connections in their environment; the connection-
// policy ablation bench drives both modes through this switch.
//
// Every exchange can be accounted into a NetworkModel: bytes moved on
// the wire plus one round trip per request (plus one per connection
// established), which converts in-memory measurements into modeled
// time on the paper's 150 Mbit/s LAN.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "http/auth.h"
#include "http/message.h"
#include "http/wire.h"
#include "net/network.h"
#include "net/network_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/policy.h"
#include "util/random.h"
#include "util/status.h"

namespace davpse::http {

enum class ConnectionPolicy {
  kPersistent,   // keep-alive, reconnect only when the server closes
  kPerRequest,   // fresh connection per request ("reconnecting each time")
};

struct ClientConfig {
  std::string endpoint;  // server name in the in-memory network
  ConnectionPolicy policy = ConnectionPolicy::kPersistent;
  std::optional<Credentials> credentials;
  /// The one retry knob: attempt budget, jittered exponential backoff,
  /// per-attempt response timeout, and overall deadline for every
  /// request this client executes. Replaces the old bespoke
  /// dead-keep-alive replay counter; see HttpClient::execute for which
  /// failures are actually replayed.
  RetryPolicy retry;
  /// DEPRECATED — subsumed by `retry`. Kept for one release as a
  /// forwarding alias: when set (>= 0) it overrides
  /// retry.max_attempts = max_retries + 1 at construction. New code
  /// sets `retry` directly.
  int max_retries = -1;
  /// Prefix for this client's metric names ("<label>.connects",
  /// "<label>.requests", "<label>.retries", "<label>.request_seconds"),
  /// so several clients in one process stay distinguishable.
  std::string connect_label = "http.client";
  /// Registry receiving this client's metrics; nullptr records into
  /// obs::Registry::global().
  obs::Registry* metrics = nullptr;
};

class HttpClient {
 public:
  /// `network` nullptr uses the process-wide net::Network::instance().
  explicit HttpClient(ClientConfig config, net::Network* network = nullptr);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Sends the request (filling Host/Authorization and X-Trace-Id) and
  /// reads the response, retrying per ClientConfig::retry. A failed
  /// attempt is replayed on a fresh connection only when doing so
  /// cannot duplicate work:
  ///  - transport errors (kUnavailable/kTimeout — see
  ///    Status::is_retryable) replay when the request provably never
  ///    left the client (zero bytes written this attempt), whatever
  ///    the method; once bytes may have reached the server, only
  ///    replay-safe methods (method_is_replay_safe: GET, HEAD,
  ///    OPTIONS, PROPFIND, SEARCH, REPORT) retry;
  ///  - 503 responses retry for any method — the server shed the
  ///    request before processing — honoring Retry-After as a backoff
  ///    floor.
  /// A streaming request body is only replayed when its source can
  /// rewind(), and never after any response bytes have reached the
  /// caller's sink. Backoff sleeps land in the
  /// "<label>.backoff_seconds" histogram.
  Result<HttpResponse> execute(HttpRequest request);

  /// Streaming execute: 2xx response bodies are drained into `sink`
  /// block by block (the returned response carries headers only, its
  /// `body` stays empty); non-2xx bodies are small diagnostics and are
  /// buffered into `body` as usual. Peak client memory is O(block),
  /// independent of the response size.
  Result<HttpResponse> execute(HttpRequest request, BodySink* sink);

  /// HTTP/1.1 pipelining — the optimization the paper lists as "not
  /// pursued": all requests are written back-to-back on one keep-alive
  /// connection before any response is read, collapsing N round trips
  /// into one. If the server closes mid-batch (per-connection request
  /// cap), the unprocessed tail is resent on a fresh connection —
  /// callers should therefore only pipeline idempotent requests.
  Result<std::vector<HttpResponse>> execute_pipelined(
      std::vector<HttpRequest> requests);

  /// Convenience wrappers. put() moves the body into a rewindable
  /// in-memory source — no further copies on the way to the wire.
  Result<HttpResponse> get(std::string_view path);
  Result<HttpResponse> put(std::string_view path, std::string body,
                           std::string_view content_type =
                               "application/octet-stream");
  Result<HttpResponse> del(std::string_view path);

  /// Streaming convenience wrappers: get_to drains the response body
  /// into `sink`; put_from sends the body straight from `body`
  /// (Content-Length when the source knows its length, chunked
  /// otherwise). Neither materializes the object.
  Result<HttpResponse> get_to(std::string_view path, BodySink* sink);
  Result<HttpResponse> put_from(std::string_view path,
                                std::shared_ptr<BodySource> body,
                                std::string_view content_type =
                                    "application/octet-stream");

  /// Attaches an accounting sink; every subsequent exchange adds its
  /// bytes and round trips. Pass nullptr to detach.
  void set_network_model(net::NetworkModel* model) { model_ = model; }

  /// Drops the cached connection (next request reconnects).
  void reset_connection();

  uint64_t connections_opened() const { return connections_opened_; }
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  /// `sink_bytes` accumulates the bytes delivered into `sink` (a retry
  /// is refused once the sink has been written); `sent_bytes` counts
  /// wire bytes this attempt pushed toward the server (zero = the
  /// request provably never left). `attempt_timeout` bounds each read
  /// of the response (0 = none).
  Result<HttpResponse> execute_once(const HttpRequest& request,
                                    BodySink* sink,
                                    bool* reused_connection,
                                    uint64_t* sink_bytes,
                                    uint64_t* sent_bytes,
                                    double attempt_timeout);
  Status ensure_connected();
  void account_traffic();

  ClientConfig config_;
  net::Network& network_;
  // Metric references resolved once at construction; the hot path only
  // touches atomics.
  obs::Registry& metrics_;
  obs::Counter& connects_metric_;
  obs::Counter& requests_metric_;
  obs::Counter& retries_metric_;
  obs::Histogram& request_seconds_;
  obs::Histogram& backoff_seconds_;
  /// Jitter source for backoff sleeps. Seeded from the connect label so
  /// runs are reproducible without coordination between clients.
  Rng backoff_rng_;
  std::unique_ptr<net::Stream> connection_;
  std::unique_ptr<WireReader> reader_;
  uint64_t accounted_bytes_ = 0;
  net::NetworkModel* model_ = nullptr;
  uint64_t connections_opened_ = 0;
  uint64_t requests_sent_ = 0;
};

}  // namespace davpse::http
