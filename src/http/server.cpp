#include "http/server.h"

#include "http/wire.h"
#include "util/log.h"

namespace davpse::http {

HttpServer::HttpServer(ServerConfig config, Handler* handler)
    : config_(std::move(config)), handler_(handler) {}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() { return start(net::Network::instance()); }

Status HttpServer::start(net::Network& network) {
  auto listener = network.listen(config_.endpoint);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  running_.store(true);
  threads_.emplace_back([this] { accept_loop(); });
  for (size_t i = 0; i < config_.daemons; ++i) {
    threads_.emplace_back([this] {
      for (;;) {
        std::unique_ptr<net::Stream> stream;
        {
          std::unique_lock<std::mutex> lock(queue_mutex_);
          queue_cv_.wait(lock, [&] {
            return !running_.load() || !queue_.empty();
          });
          if (!running_.load() && queue_.empty()) return;
          stream = std::move(queue_.front());
          queue_.pop_front();
        }
        serve_connection(std::move(stream));
      }
    });
  }
  return Status::ok();
}

void HttpServer::stop() {
  running_.store(false);
  if (listener_) listener_->shutdown();
  queue_cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  listener_.reset();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;  // listener shut down
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(std::move(stream).value());
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::serve_connection(std::unique_ptr<net::Stream> stream) {
  WireReader reader(stream.get());
  size_t served_here = 0;
  while (running_.load()) {
    if (served_here > 0) {
      stream->set_read_timeout(config_.keep_alive_timeout_seconds);
    }
    auto head = reader.read_request_head();
    stream->set_read_timeout(0);
    Status body_failure = Status::ok();
    Result<HttpRequest> request = std::move(head);
    if (request.ok()) {
      // Open the incremental body decoder. The configured body limit
      // is enforced *during* decode: an oversized upload aborts with
      // kTooLarge mid-stream instead of after buffering the body.
      auto source =
          reader.open_body(request.value().headers, config_.max_body_bytes);
      if (!source.ok()) {
        request = source.status();
      } else if (handler_ != nullptr &&
                 handler_->wants_body_stream(request.value())) {
        request.value().body_source = std::move(source).value();
      } else {
        StringBodySink sink(&request.value().body, config_.max_body_bytes);
        auto drained = drain_body(*source.value(), sink);
        if (!drained.ok()) request = drained.status();
      }
    }
    if (!request.ok()) {
      const Status& status = request.status();
      if (status.code() == ErrorCode::kUnavailable ||
          status.code() == ErrorCode::kTimeout) {
        return;  // peer closed / idle limit — normal end of connection
      }
      // The body (if any) was not consumed, so the connection framing
      // is lost — reply and close.
      int code = status.code() == ErrorCode::kTooLarge ? kRequestTooLarge
                                                       : kBadRequest;
      HttpResponse reply =
          HttpResponse::make(code, status.message() + "\n");
      reply.headers.set("Connection", "close");
      (void)write_response(stream.get(), reply);
      return;
    }

    HttpResponse response;
    if (!config_.authenticator.authorize(request.value())) {
      response = BasicAuthenticator::challenge();
    } else {
      try {
        response = handler_->handle(request.value());
      } catch (const std::exception& e) {
        DAVPSE_LOG_ERROR << "handler threw: " << e.what();
        response = HttpResponse::make(kInternalError,
                                      std::string(e.what()) + "\n");
      }
    }
    if (request.value().body_source != nullptr) {
      // Keep-alive framing: whatever the handler left unread must be
      // drained off the wire before the next request can be parsed.
      // If draining fails (oversized chunked upload, truncated body)
      // the connection is unusable — finish this reply and close.
      body_failure = discard_body(*request.value().body_source);
      if (!body_failure.is_ok() &&
          body_failure.code() == ErrorCode::kTooLarge &&
          response.status < 400) {
        response = HttpResponse::make(kRequestTooLarge,
                                      body_failure.message() + "\n");
      }
    }

    ++served_here;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    bool close_after =
        !request.value().keep_alive() || !response.keep_alive() ||
        !body_failure.is_ok() ||
        served_here >= config_.max_requests_per_connection;
    if (close_after) response.headers.set("Connection", "close");
    if (!write_response(stream.get(), response).is_ok()) return;
    if (close_after) return;
  }
}

}  // namespace davpse::http
