#include "http/server.h"

#include <algorithm>
#include <optional>

#include "http/wire.h"
#include "util/clock.h"
#include "util/log.h"
#include "util/strings.h"

namespace davpse::http {
namespace {

/// The listener's fixed poller token; connections get tokens from 1 up.
constexpr uint64_t kListenerToken = 0;

/// Counts bytes as they move through, into a live counter — a streamed
/// 64 MiB PUT shows up in "http.server.bytes_in" without the server
/// ever holding the body. The optional `local` atomic additionally
/// meters one request's own bytes for its access-log record; it must
/// outlive the source (serve_requests keeps it on the loop frame,
/// which outlives the request/response it is wired into).
class MeteredBodySource final : public BodySource {
 public:
  MeteredBodySource(std::shared_ptr<BodySource> inner, obs::Counter* bytes,
                    std::atomic<uint64_t>* local = nullptr)
      : inner_(std::move(inner)), bytes_(bytes), local_(local) {}

  Result<size_t> read(char* buf, size_t max) override {
    auto n = inner_->read(buf, max);
    if (n.ok()) {
      bytes_->add(n.value());
      if (local_ != nullptr) {
        local_->fetch_add(n.value(), std::memory_order_relaxed);
      }
    }
    return n;
  }

  std::optional<uint64_t> length() const override { return inner_->length(); }
  bool rewind() override { return inner_->rewind(); }

 private:
  std::shared_ptr<BodySource> inner_;
  obs::Counter* bytes_;
  std::atomic<uint64_t>* local_;
};

/// Read-only observability scrape under /.well-known/ — the only
/// requests ServerConfig::unauthenticated_scrape exempts from auth.
bool is_scrape_request(const HttpRequest& request) {
  return (request.method == "GET" || request.method == "HEAD") &&
         starts_with(request.target, "/.well-known/");
}

}  // namespace

/// One connection's state across the park/dispatch cycle. The
/// WireReader lives here (not on a worker frame) so bytes it buffered
/// past one request — a pipelined follow-up — survive to the next.
struct HttpServer::Connection {
  explicit Connection(std::unique_ptr<net::Stream> s)
      : stream(std::move(s)), reader(stream.get()) {}

  std::unique_ptr<net::Stream> stream;
  WireReader reader;
  size_t served = 0;
  /// True until a worker first picks this connection up — while set,
  /// the connection counts against max_queue_depth (pending_first_).
  bool first_dispatch_pending = true;
  /// Scheduler telemetry stamps (wall clock): when the connection was
  /// accepted, last parked, and last pushed onto the dispatch queue.
  double accepted_at = 0;
  double parked_at = 0;
  double enqueued_at = 0;
};

HttpServer::HttpServer(ServerConfig config, Handler* handler)
    : config_(std::move(config)),
      handler_(handler),
      metrics_(obs::registry_or_global(config_.metrics)),
      tail_sampler_(config_.tail_sampler != nullptr
                        ? *config_.tail_sampler
                        : obs::TailSampler::global()),
      bytes_in_metric_(metrics_.counter("http.server.bytes_in")),
      bytes_out_metric_(metrics_.counter("http.server.bytes_out")),
      keepalive_reuse_metric_(
          metrics_.counter("http.server.keepalive_reuse")),
      connections_metric_(metrics_.counter("http.server.connections")),
      shed_metric_(metrics_.counter("http.server.shed")),
      poller_wakes_metric_(metrics_.counter("http.server.poller_wakes")),
      stalled_metric_(metrics_.counter("http.server.stalled")),
      in_flight_gauge_(metrics_.gauge("http.server.in_flight")),
      parked_gauge_(metrics_.gauge("http.server.parked")),
      queue_wait_histogram_(
          metrics_.histogram("http.server.queue_wait_seconds")),
      parked_age_histogram_(
          metrics_.histogram("http.server.parked_age_seconds")),
      dispatch_depth_gauge_(metrics_.gauge("http.server.dispatch_depth")),
      workers_gauge_(metrics_.gauge("http.server.workers")),
      utilization_gauge_(
          metrics_.gauge("http.server.worker_utilization_ppm")),
      request_metrics_(metrics_, "http.server.requests.",
                       "http.server.latency_seconds.",
                       /*exemplars=*/true) {
  poller_.set_metrics(&metrics_);
}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() { return start(net::Network::instance()); }

Status HttpServer::start(net::Network& network) {
  auto listener = network.listen(config_.endpoint);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  running_.store(true);
  threads_.emplace_back([this] { reactor_loop(); });
  size_t workers = config_.workers > 0 ? config_.workers : config_.daemons;
  if (workers == 0) workers = 1;
  worker_count_ = workers;
  workers_gauge_.set(static_cast<int64_t>(workers));
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back(
        [this, worker_id = static_cast<int>(i)] { worker_loop(worker_id); });
  }
  return Status::ok();
}

void HttpServer::stop() {
  running_.store(false);
  // Every blocked thread has exactly one wake source: the reactor sits
  // in poller_.wait (wake() below, plus the listener shutdown firing the
  // accept watcher), workers sit in dispatch_cv_ or in a blocking read
  // on a stream we close here. Closing the streams makes shutdown O(1)
  // per connection with no timeout waits — ten thousand parked
  // keep-alive connections abort as fast as one.
  if (listener_) listener_->shutdown();
  poller_.wake();
  dispatch_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (auto& [ptr, conn] : conns_) conn->stream->close();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    parked_.clear();
    deadlines_.clear();
    conns_.clear();
    pending_first_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex_);
    dispatch_.clear();
  }
  parked_gauge_.set(0);
  dispatch_depth_gauge_.set(0);
  utilization_gauge_.set(0);
  // in_flight is deliberately NOT force-zeroed: the worker loop
  // decrements it on every exit path, so a nonzero value after join
  // is a real accounting bug tests should see.
  listener_.reset();
}

void HttpServer::reactor_loop() {
  listener_->set_accept_watcher(&poller_, kListenerToken);
  while (running_.load()) {
    double timeout = -1;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      // Lazily prune deadline entries whose token was unparked (served
      // or re-parked under a fresh token) before computing the wait.
      while (!deadlines_.empty() &&
             parked_.find(deadlines_.begin()->second) == parked_.end()) {
        deadlines_.erase(deadlines_.begin());
      }
      if (!deadlines_.empty()) {
        timeout =
            std::max(0.0, deadlines_.begin()->first - wall_time_seconds());
      }
    }
    auto ready = poller_.wait(timeout);
    poller_wakes_metric_.add(1);
    if (!running_.load()) break;
    for (uint64_t token : ready) {
      if (token == kListenerToken) {
        drain_accepts();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        auto it = parked_.find(token);
        if (it == parked_.end()) continue;  // stale token: already unparked
        conn = std::move(it->second);
        parked_.erase(it);
        parked_gauge_.set(static_cast<int64_t>(parked_.size()));
      }
      parked_age_histogram_.observe(wall_time_seconds() - conn->parked_at);
      // Quiet the watcher while a worker owns the connection — further
      // arrivals are the worker's to read, not readiness events.
      conn->stream->watch_readable(nullptr, 0);
      dispatch(std::move(conn));
    }
    // Expire parked connections whose deadline passed. Readable tokens
    // were drained first, so data always beats a same-instant timeout.
    std::vector<std::shared_ptr<Connection>> expired;
    {
      double now = wall_time_seconds();
      std::lock_guard<std::mutex> lock(state_mutex_);
      while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
        uint64_t token = deadlines_.begin()->second;
        deadlines_.erase(deadlines_.begin());
        auto it = parked_.find(token);
        if (it == parked_.end()) continue;
        expired.push_back(std::move(it->second));
        parked_.erase(it);
      }
      if (!expired.empty()) {
        parked_gauge_.set(static_cast<int64_t>(parked_.size()));
      }
    }
    // Same outcome as the old daemon's silent return on an idle or
    // never-spoke timeout: close without a reply. The closure still
    // gets an access record (status 0 — nothing was answered) so a
    // fleet of half-open connections is visible in the log, with a
    // trace id so the record can be grepped for and a close reason
    // distinguishing "idle keep-alive expired" from "never sent a
    // byte".
    for (auto& conn : expired) {
      double now = wall_time_seconds();
      parked_age_histogram_.observe(now - conn->parked_at);
      if (config_.event_log != nullptr) {
        obs::AccessRecord record;
        record.unix_seconds = unix_time_seconds();
        record.status = 0;
        record.duration_seconds = now - conn->accepted_at;
        record.trace_id = obs::generate_trace_id();
        record.daemon_id = -1;  // closed by the reactor, not a worker
        record.keepalive_reuse = conn->served > 0;
        record.event = conn->served > 0 ? "idle_expired" : "silent_close";
        config_.event_log->log_access(std::move(record));
      }
      retire(conn);
    }
  }
}

void HttpServer::drain_accepts() {
  for (;;) {
    auto accepted = listener_->try_accept();
    if (!accepted.ok()) return;  // listener shut down
    std::unique_ptr<net::Stream> stream = std::move(accepted).value();
    if (stream == nullptr) return;  // drained
    bool overloaded = false;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      size_t waiting = pending_first_;
      size_t serving = active_.load(std::memory_order_relaxed);
      overloaded =
          (config_.max_queue_depth > 0 && waiting >= config_.max_queue_depth) ||
          (config_.max_in_flight > 0 &&
           waiting + serving >= config_.max_in_flight);
    }
    if (overloaded) {
      shed_connection(std::move(stream));
      continue;
    }
    connections_metric_.add(1);
    auto conn = std::make_shared<Connection>(std::move(stream));
    conn->accepted_at = wall_time_seconds();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++pending_first_;
      conns_[conn.get()] = conn;
    }
    // A fresh connection that never sends a request line expires while
    // parked — the old per-daemon first-read timeout, now enforced by
    // the reactor without a thread pinned underneath it.
    double deadline = 0;
    if (config_.request_read_timeout_seconds > 0) {
      deadline = wall_time_seconds() + config_.request_read_timeout_seconds;
    }
    if (!park(conn, deadline, /*enforce_parked_cap=*/false)) retire(conn);
  }
}

void HttpServer::shed_connection(std::unique_ptr<net::Stream> stream) {
  shed_metric_.add(1);
  // Serialized by hand and sent with ONE non-blocking write: this runs
  // on the reactor thread, and an overload is exactly when a slow or
  // absent peer is most likely — a blocking write here would let one
  // non-reading client stall every accept. If even ~100 bytes don't
  // fit in the pipe, the peer isn't reading; it loses its 503.
  std::string trace_id = obs::generate_trace_id();
  std::string body = "server overloaded\n";
  std::string reply = "HTTP/1.1 503 ";
  reply += reason_phrase(kServiceUnavailable);
  reply += "\r\nRetry-After: " + std::to_string(config_.retry_after_seconds);
  reply += "\r\nConnection: close";
  reply += "\r\nX-Trace-Id: " + trace_id;
  reply += "\r\nContent-Length: " + std::to_string(body.size());
  reply += "\r\n\r\n";
  reply += body;
  auto wrote = stream->try_write(reply);
  if (!wrote.ok() && wrote.status().code() == ErrorCode::kUnsupported) {
    // Stream type without a non-blocking path — keep the old behavior.
    (void)stream->write(reply);
  }
  // close() leaves the buffered 503 readable (clean write-side EOF) and
  // aborts the peer's sends, so a client mid-upload fails fast and its
  // early-read path finds the 503 waiting.
  stream->close();
  // A shed connection never reaches a worker, but the refusal is an
  // exchange the peer observed — it gets an access record like any
  // other, with the trace id stamped on the 503 above.
  if (config_.event_log != nullptr) {
    obs::AccessRecord record;
    record.unix_seconds = unix_time_seconds();
    record.status = kServiceUnavailable;
    record.bytes_out = body.size();
    record.trace_id = std::move(trace_id);
    record.daemon_id = -1;  // shed by the reactor, not a worker
    record.event = "shed";
    config_.event_log->log_access(std::move(record));
  }
}

bool HttpServer::park(std::shared_ptr<Connection> conn, double deadline,
                      bool enforce_parked_cap) {
  uint64_t token;
  bool wake_reactor;
  conn->parked_at = wall_time_seconds();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!running_.load()) return false;
    if (enforce_parked_cap && config_.max_parked > 0 &&
        parked_.size() >= config_.max_parked) {
      return false;
    }
    token = next_token_++;
    parked_.emplace(token, conn);
    // The reactor only recomputes its wait deadline when woken, so a
    // park that becomes the new earliest expiry must wake it.
    wake_reactor =
        deadline > 0 &&
        (deadlines_.empty() || deadline < deadlines_.begin()->first);
    if (deadline > 0) deadlines_.emplace(deadline, token);
    parked_gauge_.set(static_cast<int64_t>(parked_.size()));
  }
  // Register outside state_mutex_: the watch hook takes the pipe's
  // queue mutex and may fire into the poller (queue → poller order);
  // state_mutex_ stays out of that chain entirely.
  if (!conn->stream->watch_readable(&poller_, token)) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    parked_.erase(token);
    parked_gauge_.set(static_cast<int64_t>(parked_.size()));
    return false;
  }
  if (wake_reactor) poller_.wake();
  return true;
}

void HttpServer::dispatch(std::shared_ptr<Connection> conn) {
  conn->enqueued_at = wall_time_seconds();
  std::lock_guard<std::mutex> lock(dispatch_mutex_);
  dispatch_.push_back(std::move(conn));
  dispatch_depth_gauge_.set(static_cast<int64_t>(dispatch_.size()));
  dispatch_cv_.notify_one();
}

void HttpServer::retire(const std::shared_ptr<Connection>& conn) {
  conn->stream->close();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (conn->first_dispatch_pending) {
    conn->first_dispatch_pending = false;
    --pending_first_;
  }
  conns_.erase(conn.get());
}

void HttpServer::worker_loop(int worker_id) {
  // Busy-time counter for *this* worker, resolved once. Microsecond
  // resolution in a plain counter keeps the hot path to one atomic add
  // while letting scrapes compute utilization as busy-delta over
  // wall-delta (the flight recorder's worker_utilization signal).
  obs::Counter& busy_metric = metrics_.counter(
      "http.server.worker_busy_micros." + std::to_string(worker_id));
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(dispatch_mutex_);
      dispatch_cv_.wait(
          lock, [&] { return !running_.load() || !dispatch_.empty(); });
      if (dispatch_.empty()) {
        if (!running_.load()) return;
        continue;
      }
      conn = std::move(dispatch_.front());
      dispatch_.pop_front();
      dispatch_depth_gauge_.set(static_cast<int64_t>(dispatch_.size()));
    }
    double picked_up = wall_time_seconds();
    queue_wait_histogram_.observe(picked_up - conn->enqueued_at);
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (conn->first_dispatch_pending) {
        conn->first_dispatch_pending = false;
        --pending_first_;
      }
    }
    size_t now_active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    in_flight_gauge_.set(static_cast<int64_t>(now_active));
    utilization_gauge_.set(
        static_cast<int64_t>(now_active * 1'000'000 / worker_count_));
    bool idle = serve_requests(*conn, worker_id);
    busy_metric.add(
        static_cast<uint64_t>((wall_time_seconds() - picked_up) * 1e6));
    now_active = active_.fetch_sub(1, std::memory_order_relaxed) - 1;
    in_flight_gauge_.set(static_cast<int64_t>(now_active));
    utilization_gauge_.set(
        static_cast<int64_t>(now_active * 1'000'000 / worker_count_));
    if (idle) {
      double deadline =
          wall_time_seconds() + config_.keep_alive_timeout_seconds;
      if (park(conn, deadline, /*enforce_parked_cap=*/true)) continue;
      // Parked-connection cap reached (or stopping): close instead.
    }
    retire(conn);
  }
}

bool HttpServer::serve_requests(Connection& conn, int worker_id) {
  net::Stream* stream = conn.stream.get();
  WireReader& reader = conn.reader;
  while (running_.load()) {
    if (conn.served > 0) {
      // A keep-alive peer that already has bytes in flight (that is
      // why we were dispatched) still gets the idle window to finish
      // composing its request head.
      stream->set_read_timeout(config_.keep_alive_timeout_seconds);
    } else if (config_.request_read_timeout_seconds > 0) {
      // First request: the reactor's parked deadline covered the wait
      // for the first byte; this bounds the rest of the head.
      stream->set_read_timeout(config_.request_read_timeout_seconds);
    }
    auto head = reader.read_request_head();
    bool head_parsed = head.ok();
    // Body reads run under the per-request deadline (0 disables); a
    // peer stalling mid-body yields kTimeout below instead of hanging.
    stream->set_read_timeout(config_.request_read_timeout_seconds);
    Status body_failure = Status::ok();
    // Per-request byte meters for the access-log record. These live on
    // the loop frame: the request/response (and any MeteredBodySource
    // pointing here) are destroyed before the iteration ends, and
    // write_response drains streamed bodies synchronously, so both
    // counts are final when the record is emitted.
    std::atomic<uint64_t> request_bytes_in{0};
    std::atomic<uint64_t> request_bytes_out{0};
    double arrived = unix_time_seconds();
    double started = wall_time_seconds();
    Result<HttpRequest> request = std::move(head);
    // Request-line copy that survives `request` being overwritten with
    // a body-decode error below — the error-path access record still
    // names what the peer asked for.
    std::string head_method;
    std::string head_target;
    if (request.ok()) {
      head_method = request.value().method;
      head_target = request.value().target;
      // Open the incremental body decoder. The configured body limit
      // is enforced *during* decode: an oversized upload aborts with
      // kTooLarge mid-stream instead of after buffering the body.
      auto source =
          reader.open_body(request.value().headers, config_.max_body_bytes);
      if (!source.ok()) {
        request = source.status();
      } else {
        // Meter the wire body so bytes_in counts live as the body is
        // drained — by the server (eager), the handler (streamed), or
        // the leftover discard below.
        auto metered = std::make_shared<MeteredBodySource>(
            std::move(source).value(), &bytes_in_metric_, &request_bytes_in);
        if (handler_ != nullptr &&
            handler_->wants_body_stream(request.value())) {
          request.value().body_source = std::move(metered);
        } else {
          StringBodySink sink(&request.value().body, config_.max_body_bytes);
          auto drained = drain_body(*metered, sink);
          if (!drained.ok()) request = drained.status();
        }
      }
    }
    if (!request.ok()) {
      const Status& status = request.status();
      if (status.code() == ErrorCode::kUnavailable ||
          (status.code() == ErrorCode::kTimeout && !head_parsed)) {
        // Peer closed, keep-alive idle limit, or a connection that
        // never produced a request line — normal end of connection.
        return false;
      }
      // The body (if any) was not consumed, so the connection framing
      // is lost — reply and close. A timeout after the head parsed
      // means the peer stalled mid-request: tell it so with 408. The
      // refusal gets a trace id of its own — stamped on the reply and
      // the access record — so a client report ("my PUT got a 408")
      // can be joined against the log even though no handler ran.
      int code = status.code() == ErrorCode::kTooLarge ? kRequestTooLarge
                 : status.code() == ErrorCode::kTimeout ? kRequestTimeout
                                                        : kBadRequest;
      std::string trace_id = obs::generate_trace_id();
      HttpResponse reply =
          HttpResponse::make(code, status.message() + "\n");
      reply.headers.set("Connection", "close");
      reply.headers.set("X-Trace-Id", trace_id);
      (void)write_response(stream, reply);
      if (config_.event_log != nullptr) {
        // Malformed exchange: no parsed request line to report, but the
        // refusal itself belongs in the access log.
        obs::AccessRecord record;
        record.unix_seconds = arrived;
        if (head_parsed) {
          record.method = head_method;
          record.path = head_target;
        }
        record.status = code;
        record.bytes_in = request_bytes_in.load(std::memory_order_relaxed);
        record.bytes_out = reply.body.size();
        record.duration_seconds = wall_time_seconds() - started;
        record.trace_id = std::move(trace_id);
        record.daemon_id = worker_id;
        record.keepalive_reuse = conn.served > 0;
        record.event = code == kRequestTimeout   ? "read_timeout"
                       : code == kRequestTooLarge ? "body_too_large"
                                                  : "bad_request";
        config_.event_log->log_access(std::move(record));
      }
      return false;
    }

    // Trace: adopt the client's id when it sent one, else open a fresh
    // trace. The scope and span cover auth + handler + leftover drain;
    // the span closes before the reply is written so a client that has
    // seen the response can rely on the server span being recorded.
    const std::string method = request.value().method;
    auto client_trace = request.value().headers.get("X-Trace-Id");
    obs::TraceScope trace_scope(client_trace
                                    ? std::string(*client_trace)
                                    : obs::generate_trace_id(),
                                config_.trace_log, &tail_sampler_);
    std::optional<obs::Span> span;
    span.emplace("http.server." + method);
    if (conn.served > 0) keepalive_reuse_metric_.add(1);

    bool skip_auth =
        config_.unauthenticated_scrape && is_scrape_request(request.value());
    HttpResponse response;
    if (!skip_auth && !config_.authenticator.authorize(request.value())) {
      response = BasicAuthenticator::challenge();
    } else {
      try {
        response = handler_->handle(request.value());
      } catch (const std::exception& e) {
        DAVPSE_LOG_ERROR << "handler threw: " << e.what();
        response = HttpResponse::make(kInternalError,
                                      std::string(e.what()) + "\n");
      }
    }
    if (request.value().body_source != nullptr) {
      // Keep-alive framing: whatever the handler left unread must be
      // drained off the wire before the next request can be parsed.
      // If draining fails (oversized chunked upload, truncated body)
      // the connection is unusable — finish this reply and close.
      body_failure = discard_body(*request.value().body_source);
      if (!body_failure.is_ok() &&
          body_failure.code() == ErrorCode::kTooLarge &&
          response.status < 400) {
        response = HttpResponse::make(kRequestTooLarge,
                                      body_failure.message() + "\n");
      }
    }

    ++conn.served;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    response.headers.set("X-Trace-Id", trace_scope.trace_id());
    span.reset();  // record the server span before the reply leaves
    double service_seconds = wall_time_seconds() - started;
    request_metrics_.record(method, service_seconds);
    // Stall watchdog: a request that blew its budget is flagged and its
    // full span tree force-retained, so the "why" is waiting at
    // /.well-known/traces even if the request was not slow enough for
    // the sampler's normal thresholds.
    bool stalled = config_.stall_budget_seconds > 0 &&
                   service_seconds > config_.stall_budget_seconds;
    if (stalled) {
      stalled_metric_.add(1);
      trace_scope.force_retain();
      DAVPSE_LOG_WARN << "request stalled: " << method << " "
                      << request.value().target << " took "
                      << service_seconds << "s (budget "
                      << config_.stall_budget_seconds << "s) trace="
                      << trace_scope.trace_id();
    }
    if (response.body_source != nullptr) {
      response.body_source = std::make_shared<MeteredBodySource>(
          std::move(response.body_source), &bytes_out_metric_,
          &request_bytes_out);
    } else {
      bytes_out_metric_.add(response.body.size());
      request_bytes_out.store(response.body.size(),
                              std::memory_order_relaxed);
    }
    bool close_after =
        !request.value().keep_alive() || !response.keep_alive() ||
        !body_failure.is_ok() ||
        conn.served >= config_.max_requests_per_connection;
    if (close_after) response.headers.set("Connection", "close");
    bool write_ok = write_response(stream, response).is_ok();
    if (config_.event_log != nullptr) {
      obs::AccessRecord record;
      record.unix_seconds = arrived;
      record.method = method;
      record.path = request.value().target;
      record.status = response.status;
      record.bytes_in = request_bytes_in.load(std::memory_order_relaxed);
      record.bytes_out = request_bytes_out.load(std::memory_order_relaxed);
      record.duration_seconds = wall_time_seconds() - started;
      record.trace_id = trace_scope.trace_id();
      record.daemon_id = worker_id;
      record.keepalive_reuse = conn.served > 1;
      if (stalled) record.event = "stalled";
      config_.event_log->log_access(std::move(record));
    }
    if (!write_ok || close_after) return false;
    // A fully pipelined follow-up may already sit in the reader's
    // buffer, where stream-level readiness polling can never see it —
    // serve it inline; park only when the buffer is drained.
    if (reader.buffered_bytes() > 0) continue;
    return true;  // keep-alive idle: hand back to the reactor
  }
  return false;
}

}  // namespace davpse::http
