#include "http/server.h"

#include <optional>

#include "http/wire.h"
#include "util/clock.h"
#include "util/log.h"
#include "util/strings.h"

namespace davpse::http {
namespace {

/// Counts bytes as they move through, into a live counter — a streamed
/// 64 MiB PUT shows up in "http.server.bytes_in" without the server
/// ever holding the body. The optional `local` atomic additionally
/// meters one request's own bytes for its access-log record; it must
/// outlive the source (serve_connection keeps it on the loop frame,
/// which outlives the request/response it is wired into).
class MeteredBodySource final : public BodySource {
 public:
  MeteredBodySource(std::shared_ptr<BodySource> inner, obs::Counter* bytes,
                    std::atomic<uint64_t>* local = nullptr)
      : inner_(std::move(inner)), bytes_(bytes), local_(local) {}

  Result<size_t> read(char* buf, size_t max) override {
    auto n = inner_->read(buf, max);
    if (n.ok()) {
      bytes_->add(n.value());
      if (local_ != nullptr) {
        local_->fetch_add(n.value(), std::memory_order_relaxed);
      }
    }
    return n;
  }

  std::optional<uint64_t> length() const override { return inner_->length(); }
  bool rewind() override { return inner_->rewind(); }

 private:
  std::shared_ptr<BodySource> inner_;
  obs::Counter* bytes_;
  std::atomic<uint64_t>* local_;
};

/// Read-only observability scrape under /.well-known/ — the only
/// requests ServerConfig::unauthenticated_scrape exempts from auth.
bool is_scrape_request(const HttpRequest& request) {
  return (request.method == "GET" || request.method == "HEAD") &&
         starts_with(request.target, "/.well-known/");
}

}  // namespace

HttpServer::HttpServer(ServerConfig config, Handler* handler)
    : config_(std::move(config)),
      handler_(handler),
      metrics_(obs::registry_or_global(config_.metrics)),
      tail_sampler_(config_.tail_sampler != nullptr
                        ? *config_.tail_sampler
                        : obs::TailSampler::global()),
      bytes_in_metric_(metrics_.counter("http.server.bytes_in")),
      bytes_out_metric_(metrics_.counter("http.server.bytes_out")),
      keepalive_reuse_metric_(
          metrics_.counter("http.server.keepalive_reuse")),
      connections_metric_(metrics_.counter("http.server.connections")),
      shed_metric_(metrics_.counter("http.server.shed")),
      in_flight_gauge_(metrics_.gauge("http.server.in_flight")),
      request_metrics_(metrics_, "http.server.requests.",
                       "http.server.latency_seconds.") {}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() { return start(net::Network::instance()); }

Status HttpServer::start(net::Network& network) {
  auto listener = network.listen(config_.endpoint);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  running_.store(true);
  threads_.emplace_back([this] { accept_loop(); });
  for (size_t i = 0; i < config_.daemons; ++i) {
    threads_.emplace_back([this, daemon_id = static_cast<int>(i)] {
      for (;;) {
        std::unique_ptr<net::Stream> stream;
        {
          std::unique_lock<std::mutex> lock(queue_mutex_);
          queue_cv_.wait(lock, [&] {
            return !running_.load() || !queue_.empty();
          });
          if (!running_.load() && queue_.empty()) return;
          stream = std::move(queue_.front());
          queue_.pop_front();
        }
        in_flight_gauge_.set(static_cast<int64_t>(
            in_flight_.fetch_add(1, std::memory_order_relaxed) + 1));
        {
          std::lock_guard<std::mutex> lock(active_mutex_);
          active_streams_.insert(stream.get());
        }
        serve_connection(stream.get(), daemon_id);
        {
          // Deregister before destroying: stop() only ever closes
          // streams it finds in the set, never a freed one.
          std::lock_guard<std::mutex> lock(active_mutex_);
          active_streams_.erase(stream.get());
        }
        stream.reset();
        in_flight_gauge_.set(static_cast<int64_t>(
            in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1));
      }
    });
  }
  return Status::ok();
}

void HttpServer::stop() {
  running_.store(false);
  if (listener_) listener_->shutdown();
  queue_cv_.notify_all();
  {
    // Abort in-flight connections: a daemon parked in a keep-alive
    // idle read would otherwise hold the join below for the full
    // keep_alive_timeout_seconds window.
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (net::Stream* stream : active_streams_) stream->close();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  listener_.reset();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;  // listener shut down
    bool overloaded = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      size_t waiting = queue_.size();
      size_t serving = in_flight_.load(std::memory_order_relaxed);
      overloaded =
          (config_.max_queue_depth > 0 && waiting >= config_.max_queue_depth) ||
          (config_.max_in_flight > 0 &&
           waiting + serving >= config_.max_in_flight);
      if (!overloaded) queue_.push_back(std::move(stream).value());
    }
    if (overloaded) {
      shed_connection(std::move(stream).value());
      continue;
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::shed_connection(std::unique_ptr<net::Stream> stream) {
  shed_metric_.add(1);
  HttpResponse reply =
      HttpResponse::make(kServiceUnavailable, "server overloaded\n");
  reply.headers.set("Retry-After", std::to_string(config_.retry_after_seconds));
  reply.headers.set("Connection", "close");
  (void)write_response(stream.get(), reply);
  // close() leaves the buffered 503 readable (clean write-side EOF) and
  // aborts the peer's sends, so a client mid-upload fails fast and its
  // early-read path finds the 503 waiting.
  stream->close();
}

void HttpServer::serve_connection(net::Stream* stream,
                                  int daemon_id) {
  WireReader reader(stream);
  size_t served_here = 0;
  connections_metric_.add(1);
  while (running_.load()) {
    if (served_here > 0) {
      stream->set_read_timeout(config_.keep_alive_timeout_seconds);
    } else if (config_.request_read_timeout_seconds > 0) {
      // A fresh connection that never sends a request line must not pin
      // this daemon forever.
      stream->set_read_timeout(config_.request_read_timeout_seconds);
    }
    auto head = reader.read_request_head();
    bool head_parsed = head.ok();
    // Body reads run under the per-request deadline (0 disables); a
    // peer stalling mid-body yields kTimeout below instead of hanging.
    stream->set_read_timeout(config_.request_read_timeout_seconds);
    Status body_failure = Status::ok();
    // Per-request byte meters for the access-log record. These live on
    // the loop frame: the request/response (and any MeteredBodySource
    // pointing here) are destroyed before the iteration ends, and
    // write_response drains streamed bodies synchronously, so both
    // counts are final when the record is emitted.
    std::atomic<uint64_t> request_bytes_in{0};
    std::atomic<uint64_t> request_bytes_out{0};
    double arrived = unix_time_seconds();
    double started = wall_time_seconds();
    Result<HttpRequest> request = std::move(head);
    if (request.ok()) {
      // Open the incremental body decoder. The configured body limit
      // is enforced *during* decode: an oversized upload aborts with
      // kTooLarge mid-stream instead of after buffering the body.
      auto source =
          reader.open_body(request.value().headers, config_.max_body_bytes);
      if (!source.ok()) {
        request = source.status();
      } else {
        // Meter the wire body so bytes_in counts live as the body is
        // drained — by the server (eager), the handler (streamed), or
        // the leftover discard below.
        auto metered = std::make_shared<MeteredBodySource>(
            std::move(source).value(), &bytes_in_metric_, &request_bytes_in);
        if (handler_ != nullptr &&
            handler_->wants_body_stream(request.value())) {
          request.value().body_source = std::move(metered);
        } else {
          StringBodySink sink(&request.value().body, config_.max_body_bytes);
          auto drained = drain_body(*metered, sink);
          if (!drained.ok()) request = drained.status();
        }
      }
    }
    if (!request.ok()) {
      const Status& status = request.status();
      if (status.code() == ErrorCode::kUnavailable ||
          (status.code() == ErrorCode::kTimeout && !head_parsed)) {
        // Peer closed, keep-alive idle limit, or a connection that
        // never produced a request line — normal end of connection.
        return;
      }
      // The body (if any) was not consumed, so the connection framing
      // is lost — reply and close. A timeout after the head parsed
      // means the peer stalled mid-request: tell it so with 408.
      int code = status.code() == ErrorCode::kTooLarge ? kRequestTooLarge
                 : status.code() == ErrorCode::kTimeout ? kRequestTimeout
                                                        : kBadRequest;
      HttpResponse reply =
          HttpResponse::make(code, status.message() + "\n");
      reply.headers.set("Connection", "close");
      (void)write_response(stream, reply);
      if (config_.event_log != nullptr) {
        // Malformed exchange: no parsed request line to report, but the
        // refusal itself belongs in the access log.
        obs::AccessRecord record;
        record.unix_seconds = arrived;
        record.status = code;
        record.bytes_in = request_bytes_in.load(std::memory_order_relaxed);
        record.bytes_out = reply.body.size();
        record.duration_seconds = wall_time_seconds() - started;
        record.daemon_id = daemon_id;
        record.keepalive_reuse = served_here > 0;
        config_.event_log->log_access(std::move(record));
      }
      return;
    }

    // Trace: adopt the client's id when it sent one, else open a fresh
    // trace. The scope and span cover auth + handler + leftover drain;
    // the span closes before the reply is written so a client that has
    // seen the response can rely on the server span being recorded.
    const std::string method = request.value().method;
    auto client_trace = request.value().headers.get("X-Trace-Id");
    obs::TraceScope trace_scope(client_trace
                                    ? std::string(*client_trace)
                                    : obs::generate_trace_id(),
                                config_.trace_log, &tail_sampler_);
    std::optional<obs::Span> span;
    span.emplace("http.server." + method);
    if (served_here > 0) keepalive_reuse_metric_.add(1);

    bool skip_auth =
        config_.unauthenticated_scrape && is_scrape_request(request.value());
    HttpResponse response;
    if (!skip_auth && !config_.authenticator.authorize(request.value())) {
      response = BasicAuthenticator::challenge();
    } else {
      try {
        response = handler_->handle(request.value());
      } catch (const std::exception& e) {
        DAVPSE_LOG_ERROR << "handler threw: " << e.what();
        response = HttpResponse::make(kInternalError,
                                      std::string(e.what()) + "\n");
      }
    }
    if (request.value().body_source != nullptr) {
      // Keep-alive framing: whatever the handler left unread must be
      // drained off the wire before the next request can be parsed.
      // If draining fails (oversized chunked upload, truncated body)
      // the connection is unusable — finish this reply and close.
      body_failure = discard_body(*request.value().body_source);
      if (!body_failure.is_ok() &&
          body_failure.code() == ErrorCode::kTooLarge &&
          response.status < 400) {
        response = HttpResponse::make(kRequestTooLarge,
                                      body_failure.message() + "\n");
      }
    }

    ++served_here;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    response.headers.set("X-Trace-Id", trace_scope.trace_id());
    span.reset();  // record the server span before the reply leaves
    request_metrics_.record(method, wall_time_seconds() - started);
    if (response.body_source != nullptr) {
      response.body_source = std::make_shared<MeteredBodySource>(
          std::move(response.body_source), &bytes_out_metric_,
          &request_bytes_out);
    } else {
      bytes_out_metric_.add(response.body.size());
      request_bytes_out.store(response.body.size(),
                              std::memory_order_relaxed);
    }
    bool close_after =
        !request.value().keep_alive() || !response.keep_alive() ||
        !body_failure.is_ok() ||
        served_here >= config_.max_requests_per_connection;
    if (close_after) response.headers.set("Connection", "close");
    bool write_ok = write_response(stream, response).is_ok();
    if (config_.event_log != nullptr) {
      obs::AccessRecord record;
      record.unix_seconds = arrived;
      record.method = method;
      record.path = request.value().target;
      record.status = response.status;
      record.bytes_in = request_bytes_in.load(std::memory_order_relaxed);
      record.bytes_out = request_bytes_out.load(std::memory_order_relaxed);
      record.duration_seconds = wall_time_seconds() - started;
      record.trace_id = trace_scope.trace_id();
      record.daemon_id = daemon_id;
      record.keepalive_reuse = served_here > 1;
      config_.event_log->log_access(std::move(record));
    }
    if (!write_ok || close_after) return;
  }
}

}  // namespace davpse::http
