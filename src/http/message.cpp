#include "http/message.h"

#include "util/strings.h"

namespace davpse::http {

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void HeaderMap::add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

void HeaderMap::remove(std::string_view name) {
  std::erase_if(entries_, [&](const auto& entry) {
    return iequals(entry.first, name);
  });
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) return std::string_view(value);
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) out.emplace_back(value);
  }
  return out;
}

bool HeaderMap::has(std::string_view name) const {
  return get(name).has_value();
}

std::optional<uint64_t> HeaderMap::get_uint(std::string_view name) const {
  auto value = get(name);
  if (!value) return std::nullopt;
  auto trimmed = trim(*value);
  if (trimmed.empty()) return std::nullopt;
  uint64_t out = 0;
  for (char c : trimmed) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

namespace {

bool keep_alive_from(const HeaderMap& headers) {
  auto connection = headers.get("Connection");
  if (connection && iequals(trim(*connection), "close")) return false;
  return true;  // HTTP/1.1 default
}

}  // namespace

bool HttpRequest::keep_alive() const { return keep_alive_from(headers); }
bool HttpResponse::keep_alive() const { return keep_alive_from(headers); }

HttpResponse HttpResponse::make(int status) {
  HttpResponse response;
  response.status = status;
  return response;
}

HttpResponse HttpResponse::make(int status, std::string body,
                                std::string_view content_type) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  response.headers.set("Content-Type", content_type);
  return response;
}

HttpResponse HttpResponse::multistatus(std::string xml_body) {
  return make(kMultiStatus, std::move(xml_body),
              "text/xml; charset=\"utf-8\"");
}

bool method_is_replay_safe(std::string_view method) {
  return method == "GET" || method == "HEAD" || method == "OPTIONS" ||
         method == "PROPFIND" || method == "SEARCH" || method == "REPORT";
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 207: return "Multi-Status";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Request Entity Too Large";
    case 415: return "Unsupported Media Type";
    case 423: return "Locked";
    case 424: return "Failed Dependency";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 507: return "Insufficient Storage";
    default: return "Unknown";
  }
}

}  // namespace davpse::http
