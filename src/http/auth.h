// HTTP Basic authentication (the scheme the paper's servers were
// configured with). Credentials are a user→password table on the
// server; the client attaches "Authorization: Basic <base64>".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.h"

namespace davpse::http {

struct Credentials {
  std::string user;
  std::string password;
};

/// Builds the Authorization header value.
std::string basic_auth_header(const Credentials& credentials);

/// Parses "Basic <base64(user:pass)>"; nullopt if absent/malformed.
std::optional<Credentials> parse_basic_auth(const HeaderMap& headers);

/// Server-side account table. Empty table = authentication disabled.
class BasicAuthenticator {
 public:
  void add_user(std::string user, std::string password) {
    accounts_[std::move(user)] = std::move(password);
  }

  bool enabled() const { return !accounts_.empty(); }

  /// True if the request carries valid credentials (or auth is off).
  bool authorize(const HttpRequest& request) const;

  /// 401 with the WWW-Authenticate challenge.
  static HttpResponse challenge();

 private:
  std::map<std::string, std::string> accounts_;
};

}  // namespace davpse::http
