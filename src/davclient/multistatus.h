// Client-side model of a 207 Multi-Status body, with two parsing
// strategies: DOM (materialize the whole tree, then walk — what Ecce's
// first implementation did with Xerces DOM) and SAX (stream events
// straight into the result structures, never building a tree — the
// optimization the paper predicts "significant improvements" from).
// bench_parser_dom_vs_sax measures the two against identical bodies.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/qname.h"

namespace davpse::davclient {

/// One property returned for a resource.
struct PropEntry {
  xml::QName name;
  std::string inner_xml;  // serialized value (empty for 404 entries)
};

/// A property that a PROPPATCH (or other batch) failed on.
struct FailedProp {
  xml::QName name;
  int status = 0;  // e.g. 507 Insufficient Storage, 424 Failed Dependency
};

/// One <D:response> element: a resource and its property results.
struct ResourceResponse {
  std::string href;                 // percent-decoded path
  std::vector<PropEntry> found;     // propstat status 200
  std::vector<xml::QName> missing;  // propstat status 404
  std::vector<FailedProp> failed;   // any other propstat status

  /// Value of a found property; nullopt if absent.
  std::optional<std::string_view> prop(const xml::QName& name) const;

  /// True if DAV:resourcetype contains DAV:collection.
  bool is_collection() const;
};

struct Multistatus {
  std::vector<ResourceResponse> responses;

  /// Response whose href matches `path` (after normalization).
  const ResourceResponse* find(std::string_view path) const;
};

enum class ParserKind {
  kDom,  // build a full element tree, then extract (Xerces-DOM style)
  kSax,  // stream events directly into the Multistatus (no tree)
};

/// Parses a multistatus body with the chosen strategy. Both return
/// identical structures (asserted by tests).
Result<Multistatus> parse_multistatus(std::string_view xml_body,
                                      ParserKind parser);

}  // namespace davpse::davclient
