#include "davclient/search.h"

#include "util/strings.h"

namespace davpse::davclient {

Where Where::eq(xml::QName prop, std::string literal) {
  Where where;
  where.op_ = "eq";
  where.prop_ = std::move(prop);
  where.literal_ = std::move(literal);
  return where;
}

Where Where::lt(xml::QName prop, std::string literal) {
  Where where = eq(std::move(prop), std::move(literal));
  where.op_ = "lt";
  return where;
}

Where Where::lte(xml::QName prop, std::string literal) {
  Where where = eq(std::move(prop), std::move(literal));
  where.op_ = "lte";
  return where;
}

Where Where::gt(xml::QName prop, std::string literal) {
  Where where = eq(std::move(prop), std::move(literal));
  where.op_ = "gt";
  return where;
}

Where Where::gte(xml::QName prop, std::string literal) {
  Where where = eq(std::move(prop), std::move(literal));
  where.op_ = "gte";
  return where;
}

Where Where::contains(xml::QName prop, std::string literal) {
  Where where = eq(std::move(prop), std::move(literal));
  where.op_ = "contains";
  return where;
}

Where Where::is_defined(xml::QName prop) {
  Where where;
  where.op_ = "is-defined";
  where.prop_ = std::move(prop);
  return where;
}

Where Where::is_collection() {
  Where where;
  where.op_ = "is-collection";
  return where;
}

Where Where::all_of(std::vector<Where> operands) {
  Where where;
  where.op_ = "and";
  where.children_ = std::move(operands);
  return where;
}

Where Where::any_of(std::vector<Where> operands) {
  Where where;
  where.op_ = "or";
  where.children_ = std::move(operands);
  return where;
}

Where Where::negate(Where operand) {
  Where where;
  where.op_ = "not";
  where.children_.push_back(std::move(operand));
  return where;
}

void Where::write(xml::XmlWriter* writer) const {
  writer->start_element(xml::dav_name(op_));
  if (!children_.empty()) {
    for (const Where& child : children_) child.write(writer);
  } else {
    if (!prop_.empty()) {
      writer->start_element(xml::dav_name("prop"));
      writer->empty_element(prop_);
      writer->end_element();
    }
    if (op_ != "is-defined" && op_ != "is-collection") {
      writer->text_element(xml::dav_name("literal"), literal_);
    }
  }
  writer->end_element();
}

std::string build_search_request(const std::string& scope,
                                 bool depth_infinity,
                                 const std::vector<xml::QName>& select,
                                 const Where* where) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(xml::dav_name("searchrequest"));
  writer.start_element(xml::dav_name("basicsearch"));

  writer.start_element(xml::dav_name("select"));
  writer.start_element(xml::dav_name("prop"));
  for (const xml::QName& name : select) {
    writer.empty_element(name);
  }
  writer.end_element();
  writer.end_element();

  writer.start_element(xml::dav_name("from"));
  writer.start_element(xml::dav_name("scope"));
  writer.text_element(xml::dav_name("href"), percent_encode_path(scope));
  writer.text_element(xml::dav_name("depth"),
                      depth_infinity ? "infinity" : "1");
  writer.end_element();
  writer.end_element();

  if (where != nullptr) {
    writer.start_element(xml::dav_name("where"));
    where->write(&writer);
    writer.end_element();
  }
  writer.end_element();
  writer.end_element();
  return writer.take();
}

}  // namespace davpse::davclient
