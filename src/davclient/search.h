// Client-side DASL basicsearch: a value-semantic expression builder
// that serializes to the DAV:basicsearch grammar the server evaluates
// (see src/dav/search.h). Keeps third-party query code free of raw
// XML:
//
//   auto hits = client.search(
//       "/Ecce", davclient::Depth::kInfinity,
//       {kFormulaProp, kFormatProp},
//       Where::eq(kFormulaProp, "H2O") && !Where::is_collection());
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xml/qname.h"
#include "xml/writer.h"

namespace davpse::davclient {

class Where {
 public:
  // -- leaf constructors -------------------------------------------------
  static Where eq(xml::QName prop, std::string literal);
  static Where lt(xml::QName prop, std::string literal);
  static Where lte(xml::QName prop, std::string literal);
  static Where gt(xml::QName prop, std::string literal);
  static Where gte(xml::QName prop, std::string literal);
  static Where contains(xml::QName prop, std::string literal);
  static Where is_defined(xml::QName prop);
  static Where is_collection();

  // -- combinators ----------------------------------------------------------
  static Where all_of(std::vector<Where> operands);
  static Where any_of(std::vector<Where> operands);
  static Where negate(Where operand);

  friend Where operator&&(Where a, Where b) {
    return all_of({std::move(a), std::move(b)});
  }
  friend Where operator||(Where a, Where b) {
    return any_of({std::move(a), std::move(b)});
  }
  Where operator!() const& { return negate(*this); }

  /// Serializes this expression as the content of <D:where>.
  void write(xml::XmlWriter* writer) const;

 private:
  Where() = default;

  std::string op_;  // DASL element local name: "eq", "and", ...
  xml::QName prop_;
  std::string literal_;
  std::vector<Where> children_;
};

/// Builds the full DAV:searchrequest body.
std::string build_search_request(const std::string& scope,
                                 bool depth_infinity,
                                 const std::vector<xml::QName>& select,
                                 const Where* where);

}  // namespace davpse::davclient
