// C++ DAV client library — the analogue of the paper's "internally
// developed C++ classes" used for all its measurements. Wraps an
// HttpClient with typed DAV operations; multistatus responses are
// parsed with either the DOM or the SAX strategy (see multistatus.h).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "davclient/multistatus.h"
#include "davclient/search.h"
#include "http/client.h"
#include "util/status.h"
#include "xml/qname.h"

namespace davpse::davclient {

enum class Depth { kZero, kOne, kInfinity };

/// One property mutation for proppatch().
struct PropWrite {
  xml::QName name;
  std::string text;     // character-data value (escaped on the wire)
  std::string raw_xml;  // OR pre-serialized XML content (used verbatim)

  static PropWrite of_text(xml::QName name, std::string value) {
    PropWrite write;
    write.name = std::move(name);
    write.text = std::move(value);
    return write;
  }
  static PropWrite of_xml(xml::QName name, std::string xml_value) {
    PropWrite write;
    write.name = std::move(name);
    write.raw_xml = std::move(xml_value);
    return write;
  }
};

struct LockHandle {
  std::string token;
  std::string path;
};

class DavClient {
 public:
  /// `network` nullptr uses the process-wide net::Network::instance().
  explicit DavClient(http::ClientConfig config,
                     ParserKind parser = ParserKind::kDom,
                     net::Network* network = nullptr);

  // -- documents --------------------------------------------------------

  Result<std::string> get(const std::string& path);

  /// Conditional GET for cache revalidation. Pass the ETag from a
  /// previous fetch (empty = unconditional): `not_modified` means the
  /// cached copy is still valid and `body` is empty.
  struct Fetched {
    bool not_modified = false;
    std::string body;
    std::string etag;
  };
  Result<Fetched> get_if_changed(const std::string& path,
                                 const std::string& previous_etag);
  Status put(const std::string& path, std::string body,
             std::string_view content_type = "application/octet-stream");
  Status remove(const std::string& path);

  // -- streaming document transfer ---------------------------------------
  // The streamed counterparts of get/put: bodies move between the
  // wire and the caller's source/sink in fixed-size blocks, so a
  // transfer of any size runs in O(block) client memory.

  /// Drains the document straight into `sink`.
  Status get_to(const std::string& path, http::BodySink* sink);

  /// Conditional streaming GET: like get_if_changed but the body (when
  /// modified) goes to `sink` instead of a returned string.
  struct FetchedMeta {
    bool not_modified = false;
    std::string etag;
  };
  Result<FetchedMeta> get_if_changed_to(const std::string& path,
                                        const std::string& previous_etag,
                                        http::BodySink* sink);

  /// Sends the document straight from `body` (Content-Length when the
  /// source knows its size, chunked otherwise).
  Status put_from(const std::string& path,
                  std::shared_ptr<http::BodySource> body,
                  std::string_view content_type = "application/octet-stream");

  // -- collections ------------------------------------------------------

  Status mkcol(const std::string& path);
  /// Creates every missing collection on the way to `path`.
  Status mkcol_recursive(const std::string& path);

  // -- namespace operations ----------------------------------------------

  Status copy(const std::string& from, const std::string& to,
              bool overwrite = true);
  Status move(const std::string& from, const std::string& to,
              bool overwrite = true);

  // -- properties --------------------------------------------------------

  /// Named-property PROPFIND.
  Result<Multistatus> propfind(const std::string& path, Depth depth,
                               const std::vector<xml::QName>& names);
  /// allprop PROPFIND.
  Result<Multistatus> propfind_all(const std::string& path, Depth depth);
  /// propname PROPFIND.
  Result<Multistatus> propfind_names(const std::string& path, Depth depth);

  Status proppatch(const std::string& path,
                   const std::vector<PropWrite>& sets,
                   const std::vector<xml::QName>& removes = {});

  /// Pipelined depth-0 named PROPFINDs: one request per path, all
  /// written before any response is read (HTTP/1.1 pipelining — the
  /// paper's "not pursued" optimization). Returns one Multistatus per
  /// path, in order.
  Result<std::vector<Multistatus>> propfind_many(
      const std::vector<std::string>& paths,
      const std::vector<xml::QName>& names);

  /// Convenience: single text property read; kNotFound if absent.
  Result<std::string> get_property(const std::string& path,
                                   const xml::QName& name);
  /// Convenience: single text property write.
  Status set_property(const std::string& path, const xml::QName& name,
                      std::string value);

  // -- searching (DASL basicsearch) -----------------------------------------

  /// Server-side property search over `scope`. Returns a multistatus
  /// of matching resources carrying the `select` properties. Pass
  /// nullptr `where` to match every resource in scope.
  Result<Multistatus> search(const std::string& scope, Depth depth,
                             const std::vector<xml::QName>& select,
                             const Where& where);
  Result<Multistatus> search_all(const std::string& scope, Depth depth,
                                 const std::vector<xml::QName>& select);

  // -- versioning (DeltaV-lite) ---------------------------------------------

  /// Puts a document under version control; the current content
  /// becomes version 1 and every subsequent PUT checks in a new
  /// version automatically. Idempotent.
  Status version_control(const std::string& path);

  /// Ascending version numbers of a version-controlled document
  /// (DAV:version-tree REPORT). kConflict if not version-controlled.
  Result<std::vector<uint32_t>> list_versions(const std::string& path);

  /// Retrieves a historical version's content.
  Result<std::string> get_version(const std::string& path, uint32_t n);

  // -- locking -----------------------------------------------------------

  Result<LockHandle> lock_exclusive(const std::string& path,
                                    const std::string& owner,
                                    double timeout_seconds = 600,
                                    bool depth_infinity = true);
  Status unlock(const LockHandle& handle);

  // -- existence ----------------------------------------------------------

  /// HEAD-based existence probe.
  Result<bool> exists(const std::string& path);

  // -- plumbing ------------------------------------------------------------

  http::HttpClient& http() { return http_; }
  void set_network_model(net::NetworkModel* model) {
    http_.set_network_model(model);
  }
  ParserKind parser() const { return parser_; }
  void set_parser(ParserKind parser) { parser_ = parser; }

 private:
  Result<http::HttpResponse> dav_request(std::string method,
                                         const std::string& path,
                                         std::string body,
                                         Depth* depth = nullptr);
  Status expect_success(const Result<http::HttpResponse>& response,
                        std::string_view operation,
                        const std::string& path) const;

  http::HttpClient http_;
  ParserKind parser_;
};

/// Maps an HTTP status to the library error taxonomy.
Status status_from_http(int http_status, std::string_view operation,
                        const std::string& path);

}  // namespace davpse::davclient
