#include "davclient/client.h"

#include "util/strings.h"
#include "util/uri.h"
#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/writer.h"

namespace davpse::davclient {
namespace {

const xml::QName kPropfindEl = xml::dav_name("propfind");
const xml::QName kPropEl = xml::dav_name("prop");
const xml::QName kAllpropEl = xml::dav_name("allprop");
const xml::QName kPropnameEl = xml::dav_name("propname");
const xml::QName kPropertyUpdateEl = xml::dav_name("propertyupdate");
const xml::QName kSetEl = xml::dav_name("set");
const xml::QName kRemoveEl = xml::dav_name("remove");
const xml::QName kLockInfoEl = xml::dav_name("lockinfo");
const xml::QName kLockScopeEl = xml::dav_name("lockscope");
const xml::QName kExclusiveEl = xml::dav_name("exclusive");
const xml::QName kLockTypeEl = xml::dav_name("locktype");
const xml::QName kWriteEl = xml::dav_name("write");
const xml::QName kOwnerEl = xml::dav_name("owner");

std::string_view depth_header(Depth depth) {
  switch (depth) {
    case Depth::kZero: return "0";
    case Depth::kOne: return "1";
    case Depth::kInfinity: return "infinity";
  }
  return "infinity";
}

}  // namespace

Status status_from_http(int http_status, std::string_view operation,
                        const std::string& path) {
  if (http_status >= 200 && http_status < 300) return Status::ok();
  std::string message = std::string(operation) + " " + path +
                        " failed with HTTP " + std::to_string(http_status);
  switch (http_status) {
    case http::kNotFound: return error(ErrorCode::kNotFound, message);
    case http::kConflict: return error(ErrorCode::kConflict, message);
    case http::kLocked: return error(ErrorCode::kLocked, message);
    case http::kPreconditionFailed:
      return error(ErrorCode::kAlreadyExists, message);
    case http::kRequestTooLarge:
    case http::kInsufficientStorage:
      return error(ErrorCode::kTooLarge, message);
    case http::kUnauthorized:
    case http::kForbidden:
      return error(ErrorCode::kPermissionDenied, message);
    case http::kMethodNotAllowed:
    case http::kNotImplemented:
      return error(ErrorCode::kUnsupported, message);
    case http::kBadRequest: return error(ErrorCode::kInvalidArgument, message);
    // A 503 means the server shed us before processing (retryable by
    // any caller; the HTTP client below already retried per policy) —
    // the same taxonomy bucket as a refused connect, so the cache's
    // stale-serving degradation triggers on both.
    case http::kServiceUnavailable:
      return error(ErrorCode::kUnavailable, message);
    case http::kRequestTimeout: return error(ErrorCode::kTimeout, message);
    default: return error(ErrorCode::kInternal, message);
  }
}

DavClient::DavClient(http::ClientConfig config, ParserKind parser,
                     net::Network* network)
    : http_(std::move(config), network), parser_(parser) {}

Result<http::HttpResponse> DavClient::dav_request(std::string method,
                                                  const std::string& path,
                                                  std::string body,
                                                  Depth* depth) {
  http::HttpRequest request;
  request.method = std::move(method);
  request.target = percent_encode_path(path);
  request.body = std::move(body);
  if (!request.body.empty()) {
    request.headers.set("Content-Type", "text/xml; charset=\"utf-8\"");
  }
  if (depth != nullptr) {
    request.headers.set("Depth", depth_header(*depth));
  }
  return http_.execute(std::move(request));
}

Status DavClient::expect_success(const Result<http::HttpResponse>& response,
                                 std::string_view operation,
                                 const std::string& path) const {
  if (!response.ok()) return response.status();
  return status_from_http(response.value().status, operation, path);
}

Result<std::string> DavClient::get(const std::string& path) {
  auto response = http_.get(percent_encode_path(path));
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "GET", path));
  return std::move(response).value().body;
}

Result<DavClient::Fetched> DavClient::get_if_changed(
    const std::string& path, const std::string& previous_etag) {
  http::HttpRequest request;
  request.method = "GET";
  request.target = percent_encode_path(path);
  if (!previous_etag.empty()) {
    request.headers.set("If-None-Match", previous_etag);
  }
  auto response = http_.execute(std::move(request));
  if (!response.ok()) return response.status();
  Fetched fetched;
  if (auto etag = response.value().headers.get("ETag")) {
    fetched.etag = std::string(*etag);
  }
  if (response.value().status == 304) {
    fetched.not_modified = true;
    return fetched;
  }
  DAVPSE_RETURN_IF_ERROR(
      status_from_http(response.value().status, "GET", path));
  fetched.body = std::move(response.value().body);
  return fetched;
}

Status DavClient::put(const std::string& path, std::string body,
                      std::string_view content_type) {
  auto response =
      http_.put(percent_encode_path(path), std::move(body), content_type);
  return expect_success(response, "PUT", path);
}

Status DavClient::get_to(const std::string& path, http::BodySink* sink) {
  auto response = http_.get_to(percent_encode_path(path), sink);
  return expect_success(response, "GET", path);
}

Result<DavClient::FetchedMeta> DavClient::get_if_changed_to(
    const std::string& path, const std::string& previous_etag,
    http::BodySink* sink) {
  http::HttpRequest request;
  request.method = "GET";
  request.target = percent_encode_path(path);
  if (!previous_etag.empty()) {
    request.headers.set("If-None-Match", previous_etag);
  }
  auto response = http_.execute(std::move(request), sink);
  if (!response.ok()) return response.status();
  FetchedMeta fetched;
  if (auto etag = response.value().headers.get("ETag")) {
    fetched.etag = std::string(*etag);
  }
  if (response.value().status == 304) {
    fetched.not_modified = true;
    return fetched;
  }
  DAVPSE_RETURN_IF_ERROR(
      status_from_http(response.value().status, "GET", path));
  return fetched;
}

Status DavClient::put_from(const std::string& path,
                           std::shared_ptr<http::BodySource> body,
                           std::string_view content_type) {
  auto response =
      http_.put_from(percent_encode_path(path), std::move(body), content_type);
  return expect_success(response, "PUT", path);
}

Status DavClient::remove(const std::string& path) {
  auto response = http_.del(percent_encode_path(path));
  return expect_success(response, "DELETE", path);
}

Status DavClient::mkcol(const std::string& path) {
  auto response = dav_request("MKCOL", path, "");
  if (!response.ok()) return response.status();
  if (response.value().status == http::kMethodNotAllowed) {
    return error(ErrorCode::kAlreadyExists, "MKCOL " + path + ": exists");
  }
  return status_from_http(response.value().status, "MKCOL", path);
}

Status DavClient::mkcol_recursive(const std::string& path) {
  DAVPSE_ASSIGN_OR_RETURN(auto normalized, normalize_path(path));
  std::string current = "/";
  for (const auto& segment : path_segments(normalized)) {
    current = join_path(current, segment);
    Status status = mkcol(current);
    if (!status.is_ok() && status.code() != ErrorCode::kAlreadyExists) {
      return status;
    }
  }
  return Status::ok();
}

Status DavClient::copy(const std::string& from, const std::string& to,
                       bool overwrite) {
  http::HttpRequest request;
  request.method = "COPY";
  request.target = percent_encode_path(from);
  request.headers.set("Destination", percent_encode_path(to));
  request.headers.set("Overwrite", overwrite ? "T" : "F");
  request.headers.set("Depth", "infinity");
  auto response = http_.execute(std::move(request));
  return expect_success(response, "COPY", from);
}

Status DavClient::move(const std::string& from, const std::string& to,
                       bool overwrite) {
  http::HttpRequest request;
  request.method = "MOVE";
  request.target = percent_encode_path(from);
  request.headers.set("Destination", percent_encode_path(to));
  request.headers.set("Overwrite", overwrite ? "T" : "F");
  auto response = http_.execute(std::move(request));
  return expect_success(response, "MOVE", from);
}

Result<Multistatus> DavClient::propfind(const std::string& path, Depth depth,
                                        const std::vector<xml::QName>& names) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kPropfindEl);
  writer.start_element(kPropEl);
  for (const auto& name : names) {
    writer.empty_element(name);
  }
  writer.end_element();
  writer.end_element();
  auto response = dav_request("PROPFIND", path, writer.take(), &depth);
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "PROPFIND", path));
  return parse_multistatus(response.value().body, parser_);
}

Result<Multistatus> DavClient::propfind_all(const std::string& path,
                                            Depth depth) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kPropfindEl);
  writer.empty_element(kAllpropEl);
  writer.end_element();
  auto response = dav_request("PROPFIND", path, writer.take(), &depth);
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "PROPFIND", path));
  return parse_multistatus(response.value().body, parser_);
}

Result<Multistatus> DavClient::propfind_names(const std::string& path,
                                              Depth depth) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kPropfindEl);
  writer.empty_element(kPropnameEl);
  writer.end_element();
  auto response = dav_request("PROPFIND", path, writer.take(), &depth);
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "PROPFIND", path));
  return parse_multistatus(response.value().body, parser_);
}

Status DavClient::proppatch(const std::string& path,
                            const std::vector<PropWrite>& sets,
                            const std::vector<xml::QName>& removes) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kPropertyUpdateEl);
  if (!sets.empty()) {
    writer.start_element(kSetEl);
    writer.start_element(kPropEl);
    for (const auto& write : sets) {
      writer.start_element(write.name);
      if (!write.raw_xml.empty()) {
        writer.raw(write.raw_xml);
      } else if (!write.text.empty()) {
        writer.text(write.text);
      }
      writer.end_element();
    }
    writer.end_element();
    writer.end_element();
  }
  if (!removes.empty()) {
    writer.start_element(kRemoveEl);
    writer.start_element(kPropEl);
    for (const auto& name : removes) {
      writer.empty_element(name);
    }
    writer.end_element();
    writer.end_element();
  }
  writer.end_element();
  auto response = dav_request("PROPPATCH", path, writer.take());
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "PROPPATCH", path));
  // Check per-property status inside the multistatus body.
  DAVPSE_ASSIGN_OR_RETURN(auto parsed,
                          parse_multistatus(response.value().body, parser_));
  for (const auto& resource : parsed.responses) {
    for (const auto& failure : resource.failed) {
      return status_from_http(failure.status,
                              "PROPPATCH property " +
                                  failure.name.to_string() + " on",
                              path);
    }
  }
  return Status::ok();
}

Result<std::vector<Multistatus>> DavClient::propfind_many(
    const std::vector<std::string>& paths,
    const std::vector<xml::QName>& names) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kPropfindEl);
  writer.start_element(kPropEl);
  for (const auto& name : names) {
    writer.empty_element(name);
  }
  writer.end_element();
  writer.end_element();
  std::string body = writer.take();

  std::vector<http::HttpRequest> requests;
  requests.reserve(paths.size());
  for (const auto& path : paths) {
    http::HttpRequest request;
    request.method = "PROPFIND";
    request.target = percent_encode_path(path);
    request.headers.set("Depth", "0");
    request.headers.set("Content-Type", "text/xml; charset=\"utf-8\"");
    request.body = body;
    requests.push_back(std::move(request));
  }
  DAVPSE_ASSIGN_OR_RETURN(auto responses,
                          http_.execute_pipelined(std::move(requests)));
  std::vector<Multistatus> out;
  out.reserve(responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    DAVPSE_RETURN_IF_ERROR(status_from_http(responses[i].status,
                                            "PROPFIND", paths[i]));
    DAVPSE_ASSIGN_OR_RETURN(auto parsed,
                            parse_multistatus(responses[i].body, parser_));
    out.push_back(std::move(parsed));
  }
  return out;
}

Result<std::string> DavClient::get_property(const std::string& path,
                                            const xml::QName& name) {
  DAVPSE_ASSIGN_OR_RETURN(auto result, propfind(path, Depth::kZero, {name}));
  if (result.responses.empty()) {
    return Status(ErrorCode::kNotFound, "no response for " + path);
  }
  auto value = result.responses.front().prop(name);
  if (!value) {
    return Status(ErrorCode::kNotFound,
                  "property " + name.to_string() + " not set on " + path);
  }
  // Values written with of_text round-trip as escaped character data;
  // undo the escaping.
  return xml::unescape_text(*value);
}

Status DavClient::set_property(const std::string& path,
                               const xml::QName& name, std::string value) {
  return proppatch(path, {PropWrite::of_text(name, std::move(value))});
}

Result<Multistatus> DavClient::search(const std::string& scope, Depth depth,
                                      const std::vector<xml::QName>& select,
                                      const Where& where) {
  std::string body = build_search_request(
      scope, depth == Depth::kInfinity, select, &where);
  auto response = dav_request("SEARCH", scope, std::move(body));
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "SEARCH", scope));
  return parse_multistatus(response.value().body, parser_);
}

Result<Multistatus> DavClient::search_all(
    const std::string& scope, Depth depth,
    const std::vector<xml::QName>& select) {
  std::string body = build_search_request(
      scope, depth == Depth::kInfinity, select, nullptr);
  auto response = dav_request("SEARCH", scope, std::move(body));
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "SEARCH", scope));
  return parse_multistatus(response.value().body, parser_);
}

Status DavClient::version_control(const std::string& path) {
  auto response = dav_request("VERSION-CONTROL", path, "");
  return expect_success(response, "VERSION-CONTROL", path);
}

Result<std::vector<uint32_t>> DavClient::list_versions(
    const std::string& path) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.empty_element(xml::dav_name("version-tree"));
  auto response = dav_request("REPORT", path, writer.take());
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "REPORT", path));
  DAVPSE_ASSIGN_OR_RETURN(auto parsed,
                          parse_multistatus(response.value().body, parser_));
  std::vector<uint32_t> versions;
  for (const auto& resource : parsed.responses) {
    auto name = resource.prop(xml::dav_name("version-name"));
    if (!name) continue;
    uint32_t n = 0;
    bool numeric = !name->empty();
    for (char c : *name) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<uint32_t>(c - '0');
    }
    if (numeric) versions.push_back(n);
  }
  return versions;
}

Result<std::string> DavClient::get_version(const std::string& path,
                                           uint32_t n) {
  http::HttpRequest request;
  request.method = "GET";
  request.target = percent_encode_path(path);
  request.headers.set("X-Version", std::to_string(n));
  auto response = http_.execute(std::move(request));
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "GET(version)", path));
  return std::move(response).value().body;
}

Result<LockHandle> DavClient::lock_exclusive(const std::string& path,
                                             const std::string& owner,
                                             double timeout_seconds,
                                             bool depth_infinity) {
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kLockInfoEl);
  writer.start_element(kLockScopeEl);
  writer.empty_element(kExclusiveEl);
  writer.end_element();
  writer.start_element(kLockTypeEl);
  writer.empty_element(kWriteEl);
  writer.end_element();
  writer.start_element(kOwnerEl);
  writer.text(owner);
  writer.end_element();
  writer.end_element();

  http::HttpRequest request;
  request.method = "LOCK";
  request.target = percent_encode_path(path);
  request.body = writer.take();
  request.headers.set("Content-Type", "text/xml; charset=\"utf-8\"");
  request.headers.set("Depth", depth_infinity ? "infinity" : "0");
  request.headers.set("Timeout",
                      "Second-" + std::to_string(
                                      static_cast<long>(timeout_seconds)));
  auto response = http_.execute(std::move(request));
  DAVPSE_RETURN_IF_ERROR(expect_success(response, "LOCK", path));
  auto token_header = response.value().headers.get("Lock-Token");
  if (!token_header) {
    return Status(ErrorCode::kMalformed, "LOCK reply without Lock-Token");
  }
  std::string raw(trim(*token_header));
  if (raw.size() >= 2 && raw.front() == '<' && raw.back() == '>') {
    raw = raw.substr(1, raw.size() - 2);
  }
  return LockHandle{raw, path};
}

Status DavClient::unlock(const LockHandle& handle) {
  http::HttpRequest request;
  request.method = "UNLOCK";
  request.target = percent_encode_path(handle.path);
  request.headers.set("Lock-Token", "<" + handle.token + ">");
  auto response = http_.execute(std::move(request));
  return expect_success(response, "UNLOCK", handle.path);
}

Result<bool> DavClient::exists(const std::string& path) {
  http::HttpRequest request;
  request.method = "HEAD";
  request.target = percent_encode_path(path);
  auto response = http_.execute(std::move(request));
  if (!response.ok()) return response.status();
  if (response.value().status == http::kNotFound) return false;
  if (response.value().status >= 200 && response.value().status < 300) {
    return true;
  }
  return status_from_http(response.value().status, "HEAD", path);
}

}  // namespace davpse::davclient
