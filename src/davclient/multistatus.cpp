#include "davclient/multistatus.h"

#include "util/strings.h"
#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/sax.h"
#include "xml/writer.h"

namespace davpse::davclient {
namespace {

const xml::QName kMultistatus = xml::dav_name("multistatus");
const xml::QName kResponse = xml::dav_name("response");
const xml::QName kHref = xml::dav_name("href");
const xml::QName kPropstat = xml::dav_name("propstat");
const xml::QName kProp = xml::dav_name("prop");
const xml::QName kStatus = xml::dav_name("status");
const xml::QName kResourceType = xml::dav_name("resourcetype");
const xml::QName kCollection = xml::dav_name("collection");

/// "HTTP/1.1 404 Not Found" -> 404 (0 on parse failure).
int parse_status_line(std::string_view line) {
  auto space = line.find(' ');
  if (space == std::string_view::npos || space + 4 > line.size()) return 0;
  int code = 0;
  for (size_t i = space + 1; i < space + 4 && i < line.size(); ++i) {
    if (line[i] < '0' || line[i] > '9') return 0;
    code = code * 10 + (line[i] - '0');
  }
  return code;
}

std::string decode_href(std::string_view raw) {
  std::string decoded;
  if (!percent_decode(trim(raw), &decoded)) {
    decoded = std::string(trim(raw));
  }
  // Strip scheme://host if an absolute URI was returned.
  auto scheme = decoded.find("://");
  if (scheme != std::string::npos) {
    auto path = decoded.find('/', scheme + 3);
    decoded = path == std::string::npos ? "/" : decoded.substr(path);
  }
  return decoded;
}

// --- DOM strategy -----------------------------------------------------

std::string inner_xml_of(const xml::Element& element) {
  std::string out = xml::escape_text(element.text());
  for (const auto& child : element.children()) {
    out += child->to_xml();
  }
  return out;
}

Result<Multistatus> parse_with_dom(std::string_view xml_body) {
  auto doc = xml::parse_document(xml_body);
  if (!doc.ok()) return doc.status();
  const xml::Element& root = *doc.value();
  if (!(root.name() == kMultistatus)) {
    return Status(ErrorCode::kMalformed,
                  "expected DAV:multistatus, got " + root.name().to_string());
  }
  Multistatus out;
  for (const xml::Element* response : root.children_named(kResponse)) {
    ResourceResponse resource;
    resource.href = decode_href(response->child_text(kHref));
    for (const xml::Element* propstat : response->children_named(kPropstat)) {
      int status = parse_status_line(propstat->child_text(kStatus));
      const xml::Element* prop = propstat->first_child(kProp);
      if (prop == nullptr) continue;
      for (const auto& entry : prop->children()) {
        if (status == 200) {
          resource.found.push_back({entry->name(), inner_xml_of(*entry)});
        } else if (status == 404) {
          resource.missing.push_back(entry->name());
        } else {
          resource.failed.push_back({entry->name(), status});
        }
      }
    }
    out.responses.push_back(std::move(resource));
  }
  return out;
}

// --- SAX strategy -----------------------------------------------------

/// Streams multistatus events straight into the result structure.
/// Property values below the prop-child level are re-serialized into a
/// small per-property buffer; no generic tree is ever built.
class MultistatusSax final : public xml::SaxHandler {
 public:
  void on_start_element(
      const xml::QName& name,
      const std::vector<xml::SaxAttribute>& attributes) override {
    (void)attributes;
    ++depth_;
    if (depth_ == 1) {
      root_ok_ = name == kMultistatus;
      return;
    }
    if (depth_ == 2 && name == kResponse) {
      current_ = ResourceResponse();
      return;
    }
    if (depth_ == 3) {
      in_href_ = name == kHref;
      in_propstat_ = name == kPropstat;
      href_text_.clear();
      if (in_propstat_) {
        pending_entries_.clear();
        propstat_status_ = 0;
      }
      return;
    }
    if (in_propstat_ && depth_ == 4) {
      in_prop_ = name == kProp;
      in_status_ = name == kStatus;
      status_text_.clear();
      return;
    }
    if (in_prop_ && depth_ == 5) {
      // A property element begins.
      pending_entries_.push_back({name, std::string()});
      value_writer_ = xml::XmlWriter();
      value_depth_ = 0;
      return;
    }
    if (in_prop_ && depth_ > 5) {
      value_writer_.start_element(name);
      ++value_depth_;
    }
  }

  void on_end_element(const xml::QName& name) override {
    if (in_prop_ && depth_ > 5) {
      value_writer_.end_element();
      --value_depth_;
      if (depth_ == 6 && value_depth_ == 0) {
        // Nested element closed at the top of the value: flush.
        pending_entries_.back().inner_xml += value_writer_.take();
        value_writer_ = xml::XmlWriter();
      }
    } else if (in_prop_ && depth_ == 5) {
      // property element ends; inner_xml already accumulated
    } else if (depth_ == 4) {
      if (in_status_) propstat_status_ = parse_status_line(status_text_);
      in_prop_ = false;
      in_status_ = false;
    } else if (depth_ == 3) {
      if (in_href_) current_.href = decode_href(href_text_);
      if (in_propstat_) {
        for (auto& entry : pending_entries_) {
          if (propstat_status_ == 200) {
            current_.found.push_back(std::move(entry));
          } else if (propstat_status_ == 404) {
            current_.missing.push_back(entry.name);
          } else {
            current_.failed.push_back({entry.name, propstat_status_});
          }
        }
        pending_entries_.clear();
      }
      in_href_ = false;
      in_propstat_ = false;
    } else if (depth_ == 2 && name == kResponse) {
      result_.responses.push_back(std::move(current_));
    }
    --depth_;
  }

  void on_characters(std::string_view text) override {
    if (in_href_ && depth_ == 3) {
      href_text_ += text;
    } else if (in_status_ && depth_ == 4) {
      status_text_ += text;
    } else if (in_prop_ && depth_ == 5 && !pending_entries_.empty()) {
      pending_entries_.back().inner_xml += xml::escape_text(text);
    } else if (in_prop_ && depth_ > 5) {
      value_writer_.text(text);
    }
  }

  bool root_ok() const { return root_ok_; }
  Multistatus take() { return std::move(result_); }

 private:
  Multistatus result_;
  ResourceResponse current_;
  std::vector<PropEntry> pending_entries_;
  std::string href_text_;
  std::string status_text_;
  xml::XmlWriter value_writer_;
  int value_depth_ = 0;
  int propstat_status_ = 0;
  int depth_ = 0;
  bool root_ok_ = false;
  bool in_href_ = false;
  bool in_propstat_ = false;
  bool in_prop_ = false;
  bool in_status_ = false;
};

Result<Multistatus> parse_with_sax(std::string_view xml_body) {
  MultistatusSax handler;
  xml::SaxParser parser;
  DAVPSE_RETURN_IF_ERROR(parser.parse(xml_body, &handler));
  if (!handler.root_ok()) {
    return Status(ErrorCode::kMalformed, "expected DAV:multistatus root");
  }
  return handler.take();
}

}  // namespace

std::optional<std::string_view> ResourceResponse::prop(
    const xml::QName& name) const {
  for (const auto& entry : found) {
    if (entry.name == name) return std::string_view(entry.inner_xml);
  }
  return std::nullopt;
}

bool ResourceResponse::is_collection() const {
  auto value = prop(kResourceType);
  return value && value->find("collection") != std::string_view::npos;
}

const ResourceResponse* Multistatus::find(std::string_view path) const {
  for (const auto& response : responses) {
    if (response.href == path) return &response;
    // Tolerate trailing-slash variants for collections.
    if (!response.href.empty() && response.href.back() == '/' &&
        response.href.substr(0, response.href.size() - 1) == path) {
      return &response;
    }
  }
  return nullptr;
}

Result<Multistatus> parse_multistatus(std::string_view xml_body,
                                      ParserKind parser) {
  return parser == ParserKind::kDom ? parse_with_dom(xml_body)
                                    : parse_with_sax(xml_body);
}

}  // namespace davpse::davclient
