#include "dbm/consolidated.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/fs.h"

namespace davpse::dbm {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kRecordMagic = 0xDA7B10C5;  // one WAL batch record
constexpr uint64_t kShardMagic = 0x4450534844424D31ull;   // "DPSHDBM1"
constexpr uint64_t kManifestMagic = 0x44504D414E494631ull;  // "DPMANIF1"
constexpr size_t kRecordHeader = 4 + 8 + 4 + 4;  // magic|seq|len|crc

// -- little-endian framing --------------------------------------------------

void put_u32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void put_u64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

uint32_t get_u32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t get_u64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

/// Bounds-checked sequential reader over a byte buffer.
struct Reader {
  const char* p;
  size_t left;

  bool u8(uint8_t* out) {
    if (left < 1) return false;
    *out = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return true;
  }
  bool u32(uint32_t* out) {
    if (left < 4) return false;
    *out = get_u32(p);
    p += 4;
    left -= 4;
    return true;
  }
  bool str(size_t n, std::string* out) {
    if (left < n) return false;
    out->assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

uint32_t crc32_of(const char* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ static_cast<uint8_t>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode_ops(const std::vector<ConsolidatedStore::Op>& batch) {
  std::string out;
  for (const auto& op : batch) {
    out.push_back(static_cast<char>(op.kind));
    put_u32(&out, static_cast<uint32_t>(op.resource.size()));
    put_u32(&out, static_cast<uint32_t>(op.key.size()));
    put_u32(&out, static_cast<uint32_t>(op.value.size()));
    out += op.resource;
    out += op.key;
    out += op.value;
  }
  return out;
}

bool decode_ops(const char* data, size_t len,
                std::vector<ConsolidatedStore::Op>* out) {
  Reader r{data, len};
  while (r.left > 0) {
    uint8_t kind = 0;
    uint32_t rlen = 0, klen = 0, vlen = 0;
    ConsolidatedStore::Op op;
    if (!r.u8(&kind) || !r.u32(&rlen) || !r.u32(&klen) || !r.u32(&vlen) ||
        !r.str(rlen, &op.resource) || !r.str(klen, &op.key) ||
        !r.str(vlen, &op.value)) {
      return false;
    }
    if (kind < 1 || kind > 5) return false;
    op.kind = static_cast<ConsolidatedStore::Op::Kind>(kind);
    out->push_back(std::move(op));
  }
  return true;
}

void append_record(std::string* out, uint64_t seq, const std::string& payload) {
  put_u32(out, kRecordMagic);
  put_u64(out, seq);
  put_u32(out, static_cast<uint32_t>(payload.size()));
  put_u32(out, crc32_of(payload.data(), payload.size()));
  *out += payload;
}

/// True when `path` is `prefix` or lies below it.
bool in_subtree(const std::string& path, const std::string& prefix) {
  if (path == prefix) return true;
  if (prefix == "/") return path.size() > 1 && path.front() == '/';
  return path.size() > prefix.size() + 1 &&
         path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}

uint64_t entry_bytes(const std::string& r, const std::string& k,
                     const std::string& v) {
  return 12 + r.size() + k.size() + v.size();  // 3×u32 framing
}

}  // namespace

ConsolidatedStore::ConsolidatedStore(fs::path dir,
                                     const ConsolidatedOptions& options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  shards_.resize(options_.shard_count);
  obs::Registry& registry = obs::registry_or_global(options_.metrics);
  batches_ = &registry.counter("dbm.consolidated.batches");
  wal_flushes_ = &registry.counter("dbm.consolidated.wal_flushes");
  wal_bytes_metric_ = &registry.counter("dbm.consolidated.wal_bytes");
  checkpoints_ = &registry.counter("dbm.consolidated.checkpoints");
  replayed_records_ = &registry.counter("dbm.consolidated.replayed_records");
  torn_records_ = &registry.counter("dbm.consolidated.torn_records");
  fetches_ = &registry.counter("dbm.consolidated.fetch");
  index_queries_ = &registry.counter("dbm.consolidated.index_queries");
}

ConsolidatedStore::~ConsolidatedStore() {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (wal_.is_open()) wal_.close();
}

fs::path ConsolidatedStore::wal_path() const { return dir_ / "wal.log"; }
fs::path ConsolidatedStore::manifest_path() const { return dir_ / "MANIFEST"; }

fs::path ConsolidatedStore::shard_path(size_t shard,
                                       uint64_t generation) const {
  return dir_ / ("shard-" + std::to_string(shard) + ".g" +
                 std::to_string(generation) + ".kv");
}

size_t ConsolidatedStore::shard_of(const std::string& resource) const {
  return std::hash<std::string>{}(resource) % options_.shard_count;
}

Result<std::unique_ptr<ConsolidatedStore>> ConsolidatedStore::open(
    const fs::path& dir, const ConsolidatedOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status(ErrorCode::kInternal,
                  "cannot create property store directory: " + ec.message());
  }
  std::unique_ptr<ConsolidatedStore> store(
      new ConsolidatedStore(dir, options));
  uint64_t checkpoint_seq = 0;
  uint64_t generation = 0;
  DAVPSE_RETURN_IF_ERROR(store->load_checkpoint(&checkpoint_seq, &generation));
  store->generation_ = generation;
  DAVPSE_RETURN_IF_ERROR(store->replay_wal(checkpoint_seq));
  // Retire images from interrupted or superseded checkpoints.
  for (auto it = fs::directory_iterator(dir, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    std::string name = it->path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    auto gen_at = name.rfind(".g");
    if (gen_at == std::string::npos) continue;
    std::string gen_str =
        name.substr(gen_at + 2, name.size() - gen_at - 2 - 3);  // strip ".kv"
    if (gen_str != std::to_string(generation)) {
      std::error_code rm;
      fs::remove(it->path(), rm);
    }
  }
  return store;
}

Status ConsolidatedStore::load_checkpoint(uint64_t* checkpoint_seq,
                                          uint64_t* generation) {
  *checkpoint_seq = 0;
  *generation = 0;
  std::error_code ec;
  if (!fs::exists(manifest_path(), ec)) return Status::ok();
  std::string manifest;
  DAVPSE_RETURN_IF_ERROR(read_file(manifest_path(), &manifest));
  if (manifest.size() != 24 || get_u64(manifest.data()) != kManifestMagic) {
    return Status(ErrorCode::kMalformed, "corrupt property-store manifest");
  }
  *generation = get_u64(manifest.data() + 8);
  *checkpoint_seq = get_u64(manifest.data() + 16);

  for (size_t i = 0; i < options_.shard_count; ++i) {
    fs::path image_path = shard_path(i, *generation);
    if (!fs::exists(image_path, ec)) continue;  // empty shard
    std::string image;
    DAVPSE_RETURN_IF_ERROR(read_file(image_path, &image));
    if (image.size() < 8 || get_u64(image.data()) != kShardMagic) {
      return Status(ErrorCode::kMalformed,
                    "corrupt shard image: " + image_path.string());
    }
    Reader r{image.data() + 8, image.size() - 8};
    while (r.left > 0) {
      uint32_t rlen = 0, klen = 0, vlen = 0;
      std::string resource, key, value;
      if (!r.u32(&rlen) || !r.u32(&klen) || !r.u32(&vlen) ||
          !r.str(rlen, &resource) || !r.str(klen, &key) ||
          !r.str(vlen, &value)) {
        return Status(ErrorCode::kMalformed,
                      "truncated shard image: " + image_path.string());
      }
      state_set(resource, key, value);
    }
  }
  return Status::ok();
}

Status ConsolidatedStore::replay_wal(uint64_t checkpoint_seq) {
  std::error_code ec;
  uint64_t last_seq = checkpoint_seq;
  std::string buf;
  size_t good = 0;
  bool existed = fs::exists(wal_path(), ec);
  if (existed) {
    DAVPSE_RETURN_IF_ERROR(read_file(wal_path(), &buf));
    size_t off = 0;
    while (off + kRecordHeader <= buf.size()) {
      const char* rec = buf.data() + off;
      if (get_u32(rec) != kRecordMagic) break;
      uint64_t seq = get_u64(rec + 4);
      uint32_t len = get_u32(rec + 12);
      uint32_t crc = get_u32(rec + 16);
      if (off + kRecordHeader + len > buf.size()) break;
      const char* payload = rec + kRecordHeader;
      if (crc32_of(payload, len) != crc) break;
      std::vector<Op> ops;
      if (!decode_ops(payload, len, &ops)) break;
      // Records at or below the checkpoint are already inside the shard
      // images (a crash between MANIFEST publish and WAL truncation
      // leaves them behind); replaying them would double-apply tree ops.
      if (seq > checkpoint_seq) {
        apply_to_state(ops);
        replayed_records_->add(1);
      }
      if (seq > last_seq) last_seq = seq;
      off += kRecordHeader + len;
      good = off;
    }
    if (good < buf.size()) {
      // Torn tail from a crash mid-group-commit: drop it so the next
      // append starts at a clean record boundary.
      torn_records_->add(1);
      fs::resize_file(wal_path(), good, ec);
      if (ec) {
        return Status(ErrorCode::kInternal,
                      "cannot truncate torn WAL: " + ec.message());
      }
    }
  }
  next_seq_ = last_seq + 1;
  durable_seq_ = last_seq;
  wal_written_ = good;
  wal_.open(wal_path(), std::ios::binary | std::ios::app);
  if (!wal_) {
    return Status(ErrorCode::kInternal,
                  "cannot open WAL: " + wal_path().string());
  }
  return Status::ok();
}

Status ConsolidatedStore::write_wal(const std::string& buf) {
  uint64_t allowed = buf.size();
  bool injected = false;
  if (options_.fail_after_wal_bytes > 0 &&
      wal_written_ + buf.size() > options_.fail_after_wal_bytes) {
    allowed = options_.fail_after_wal_bytes > wal_written_
                  ? options_.fail_after_wal_bytes - wal_written_
                  : 0;
    injected = true;
  }
  if (allowed > 0) {
    wal_.write(buf.data(), static_cast<std::streamsize>(allowed));
    wal_.flush();
    if (!wal_) {
      return Status(ErrorCode::kInternal, "WAL write failed");
    }
    wal_written_ += allowed;
    wal_bytes_metric_->add(allowed);
  }
  if (injected) {
    return Status(ErrorCode::kUnavailable,
                  "injected WAL crash after " +
                      std::to_string(options_.fail_after_wal_bytes) +
                      " bytes");
  }
  wal_flushes_->add(1);
  return Status::ok();
}

Status ConsolidatedStore::apply(const std::vector<Op>& batch) {
  if (batch.empty()) return Status::ok();
  std::string payload = encode_ops(batch);
  std::unique_lock<std::mutex> lock(wal_mutex_);
  if (!wal_status_.is_ok()) return wal_status_;
  uint64_t seq = next_seq_++;
  append_record(&pending_, seq, payload);
  pending_last_seq_ = seq;
  batches_->add(1);
  {
    // Visibility in enqueue (= WAL) order. Readers may observe a batch
    // before its group flush lands; apply() only reports success once
    // the record is durable.
    std::unique_lock<std::shared_mutex> state(state_mutex_);
    apply_to_state(batch);
  }
  // Group commit: the first writer to find no flush in progress drains
  // the shared pending buffer for everyone; the rest wait on the
  // condition variable until a leader's flush covers their record.
  while (durable_seq_ < seq) {
    if (!wal_status_.is_ok()) return wal_status_;
    if (!flush_in_progress_) {
      flush_in_progress_ = true;
      std::string buf;
      buf.swap(pending_);
      uint64_t upto = pending_last_seq_;
      lock.unlock();
      Status wrote = write_wal(buf);
      lock.lock();
      flush_in_progress_ = false;
      if (wrote.is_ok()) {
        durable_seq_ = upto;
      } else {
        wal_status_ = wrote;
      }
      wal_cv_.notify_all();
      if (!wrote.is_ok()) return wrote;
    } else {
      wal_cv_.wait(lock);
    }
  }
  bool want_checkpoint = wal_written_ >= options_.checkpoint_wal_bytes;
  lock.unlock();
  if (want_checkpoint) maybe_checkpoint();
  return Status::ok();
}

void ConsolidatedStore::apply_to_state(const std::vector<Op>& batch) {
  for (const auto& op : batch) {
    switch (op.kind) {
      case Op::Kind::kSet:
        state_set(op.resource, op.key, op.value);
        break;
      case Op::Kind::kRemoveKey:
        state_remove_key(op.resource, op.key);
        break;
      case Op::Kind::kRemoveTree:
        state_remove_tree(op.resource);
        break;
      case Op::Kind::kCopyTree:
      case Op::Kind::kMoveTree: {
        const std::string& from = op.resource;
        const std::string& to = op.key;
        std::vector<std::pair<std::string,
                              std::map<std::string, std::string>>> moved;
        for (const std::string& resource : state_subtree(from)) {
          std::string dest = to + resource.substr(from.size());
          moved.emplace_back(std::move(dest),
                             shards_[shard_of(resource)].resources[resource]);
        }
        state_remove_tree(to);
        if (op.kind == Op::Kind::kMoveTree) state_remove_tree(from);
        for (auto& [dest, props] : moved) {
          for (auto& [key, value] : props) state_set(dest, key, value);
        }
        break;
      }
    }
  }
}

void ConsolidatedStore::state_set(const std::string& resource,
                                  const std::string& key,
                                  const std::string& value) {
  auto& props = shards_[shard_of(resource)].resources[resource];
  auto [it, inserted] = props.try_emplace(key, value);
  if (inserted) {
    if (props.size() == 1) {
      ++resource_count_;
      resource_names_.insert(resource);
    }
    live_bytes_ += entry_bytes(resource, key, value);
    index_[key].insert(resource);
  } else {
    live_bytes_ += value.size();
    live_bytes_ -= it->second.size();
    it->second = value;
  }
}

void ConsolidatedStore::state_remove_key(const std::string& resource,
                                         const std::string& key) {
  auto& resources = shards_[shard_of(resource)].resources;
  auto res_it = resources.find(resource);
  if (res_it == resources.end()) return;
  auto key_it = res_it->second.find(key);
  if (key_it == res_it->second.end()) return;
  live_bytes_ -= entry_bytes(resource, key, key_it->second);
  res_it->second.erase(key_it);
  if (res_it->second.empty()) {
    resources.erase(res_it);
    --resource_count_;
    resource_names_.erase(resource);
  }
  auto idx_it = index_.find(key);
  if (idx_it != index_.end()) {
    idx_it->second.erase(resource);
    if (idx_it->second.empty()) index_.erase(idx_it);
  }
}

std::vector<std::string> ConsolidatedStore::state_subtree(
    const std::string& prefix) const {
  std::vector<std::string> out;
  auto exact = resource_names_.find(prefix);
  if (exact != resource_names_.end()) out.push_back(*exact);
  std::string below = prefix == "/" ? "/" : prefix + "/";
  for (auto it = resource_names_.lower_bound(below);
       it != resource_names_.end(); ++it) {
    if (it->compare(0, below.size(), below) != 0) break;
    if (*it == prefix) continue;  // root prefix: "/" itself has no slash tail
    out.push_back(*it);
  }
  return out;
}

void ConsolidatedStore::state_remove_tree(const std::string& prefix) {
  for (const std::string& resource : state_subtree(prefix)) {
    // Copy the key list: state_remove_key mutates the map.
    std::vector<std::string> keys;
    for (const auto& [key, value] :
         shards_[shard_of(resource)].resources[resource]) {
      keys.push_back(key);
    }
    for (const std::string& key : keys) state_remove_key(resource, key);
  }
}

Result<std::string> ConsolidatedStore::fetch(const std::string& resource,
                                             const std::string& key) const {
  fetches_->add(1);
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  const auto& resources = shards_[shard_of(resource)].resources;
  auto res_it = resources.find(resource);
  if (res_it == resources.end()) {
    return Status(ErrorCode::kNotFound, "no properties on " + resource);
  }
  auto key_it = res_it->second.find(key);
  if (key_it == res_it->second.end()) {
    return Status(ErrorCode::kNotFound, "no such key on " + resource);
  }
  return key_it->second;
}

std::vector<std::pair<std::string, std::string>> ConsolidatedStore::fetch_all(
    const std::string& resource) const {
  fetches_->add(1);
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  const auto& resources = shards_[shard_of(resource)].resources;
  auto res_it = resources.find(resource);
  if (res_it == resources.end()) return out;
  out.assign(res_it->second.begin(), res_it->second.end());
  return out;
}

std::vector<std::vector<std::pair<std::string, std::string>>>
ConsolidatedStore::fetch_many(const std::vector<std::string>& resources,
                              const std::vector<std::string>& keys) const {
  fetches_->add(1);
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  std::vector<std::vector<std::pair<std::string, std::string>>> out;
  out.reserve(resources.size());
  for (const auto& resource : resources) {
    std::vector<std::pair<std::string, std::string>> list;
    const auto& shard = shards_[shard_of(resource)].resources;
    auto res_it = shard.find(resource);
    if (res_it != shard.end()) {
      if (keys.empty()) {
        list.assign(res_it->second.begin(), res_it->second.end());
      } else {
        for (const auto& key : keys) {
          auto key_it = res_it->second.find(key);
          if (key_it != res_it->second.end()) {
            list.emplace_back(key_it->first, key_it->second);
          }
        }
      }
    }
    out.push_back(std::move(list));
  }
  return out;
}

std::vector<std::string> ConsolidatedStore::resources_with_key(
    const std::string& key) const {
  index_queries_->add(1);
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return {};
  std::vector<std::string> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t ConsolidatedStore::resource_count() const {
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  return resource_count_;
}

uint64_t ConsolidatedStore::live_bytes() const {
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  return live_bytes_;
}

uint64_t ConsolidatedStore::wal_bytes() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return wal_written_;
}

uint64_t ConsolidatedStore::disk_bytes() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  uint64_t total = wal_written_;
  std::error_code ec;
  for (size_t i = 0; i < options_.shard_count; ++i) {
    fs::path image = shard_path(i, generation_);
    if (fs::exists(image, ec)) total += fs::file_size(image, ec);
  }
  std::error_code manifest_ec;
  if (fs::exists(manifest_path(), manifest_ec)) {
    total += fs::file_size(manifest_path(), manifest_ec);
  }
  return total;
}

Status ConsolidatedStore::checkpoint() {
  std::unique_lock<std::mutex> lock(wal_mutex_);
  wal_cv_.wait(lock, [&] { return !flush_in_progress_; });
  // A crashed store keeps its WAL untouched so recovery sees the full
  // history.
  if (!wal_status_.is_ok()) return wal_status_;
  // Flush whatever a group leader has not picked up yet (checkpoint is
  // rare; holding the lock through this write is fine).
  if (!pending_.empty()) {
    std::string buf;
    buf.swap(pending_);
    uint64_t upto = pending_last_seq_;
    Status wrote = write_wal(buf);
    if (!wrote.is_ok()) {
      wal_status_ = wrote;
      wal_cv_.notify_all();
      return wrote;
    }
    durable_seq_ = upto;
    wal_cv_.notify_all();
  }
  // Everything < next_seq_ is now durable and applied to state.
  uint64_t checkpoint_seq = next_seq_ - 1;
  uint64_t new_generation = generation_ + 1;
  {
    std::shared_lock<std::shared_mutex> state(state_mutex_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::string image;
      put_u64(&image, kShardMagic);
      // The resource table is hashed; sort the names so equal states
      // always produce byte-identical images.
      std::vector<const std::string*> sorted;
      sorted.reserve(shards_[i].resources.size());
      for (const auto& [resource, props] : shards_[i].resources) {
        sorted.push_back(&resource);
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const std::string* a, const std::string* b) {
                  return *a < *b;
                });
      for (const std::string* name : sorted) {
        const std::string& resource = *name;
        const auto& props = shards_[i].resources.at(resource);
        for (const auto& [key, value] : props) {
          put_u32(&image, static_cast<uint32_t>(resource.size()));
          put_u32(&image, static_cast<uint32_t>(key.size()));
          put_u32(&image, static_cast<uint32_t>(value.size()));
          image += resource;
          image += key;
          image += value;
        }
      }
      DAVPSE_RETURN_IF_ERROR(
          write_file_atomic(shard_path(i, new_generation), image));
    }
  }
  // The manifest rename is the commit point: before it, recovery uses
  // the old generation + full WAL; after it, the new images + the
  // (possibly still untruncated) WAL, whose ≤checkpoint_seq records
  // replay as no-ops because recovery skips them by sequence.
  std::string manifest;
  put_u64(&manifest, kManifestMagic);
  put_u64(&manifest, new_generation);
  put_u64(&manifest, checkpoint_seq);
  DAVPSE_RETURN_IF_ERROR(write_file_atomic(manifest_path(), manifest));

  wal_.close();
  wal_.open(wal_path(), std::ios::binary | std::ios::trunc);
  if (!wal_) {
    wal_status_ = Status(ErrorCode::kInternal, "cannot reopen WAL");
    wal_cv_.notify_all();
    return wal_status_;
  }
  wal_written_ = 0;
  uint64_t old_generation = generation_;
  generation_ = new_generation;
  std::error_code ec;
  for (size_t i = 0; i < shards_.size(); ++i) {
    fs::remove(shard_path(i, old_generation), ec);
  }
  checkpoints_->add(1);
  return Status::ok();
}

void ConsolidatedStore::maybe_checkpoint() {
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    if (wal_written_ < options_.checkpoint_wal_bytes) return;
    // A checkpoint rewrites every shard — O(live bytes). Amortize:
    // only pay that once the WAL has grown to half the store, so a
    // bulk load sees constant write amplification (geometric
    // checkpoint spacing) instead of rewriting an ever-larger store
    // every fixed 64 MB of WAL.
    std::shared_lock<std::shared_mutex> state(state_mutex_);
    if (wal_written_ < live_bytes_ / 2) return;
  }
  // Best effort: a failure here leaves the WAL in place, which is
  // correct (just larger); the sticky status surfaces on the next apply.
  (void)checkpoint();
}

}  // namespace davpse::dbm
