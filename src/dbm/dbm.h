// DBM-style key/value files — the property store behind the DAV
// server, one file per resource, exactly as mod_dav used SDBM/GDBM.
//
// The two flavors reproduce the engine parameters the paper reports
// (§3.2.1/§3.2.4), because those parameters *drive its results*:
//   SDBM: 1 KB cap on individual values, 8 KB default initial size,
//         write-through (simpler/slower).
//   GDBM: no value cap, 25 KB default initial size, buffered writes
//         (faster).
// The preallocated initial region is real file space: a store of many
// small per-resource databases therefore carries the allocated-but-
// unused overhead that produced the paper's +10% (SDBM) / +25% (GDBM)
// disk numbers. Deleted/updated values leave dead records behind until
// `compact()` runs — the "manual garbage collection utilities" of the
// paper.
//
// Instances are NOT thread-safe; callers serialize per file (the DAV
// property layer holds a per-resource lock).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace davpse::dbm {

enum class Flavor : uint32_t {
  kSdbm = 1,
  kGdbm = 2,
};

struct DbmOptions {
  uint64_t initial_size = 0;     // preallocated bytes (0 = header only)
  uint64_t max_value_size = 0;   // 0 = unlimited
  bool write_through = false;    // flush after every store/remove
};

/// Engine defaults per the paper's description of SDBM and GDBM.
DbmOptions default_options(Flavor flavor);

class Dbm {
 public:
  virtual ~Dbm() = default;

  /// Inserts or replaces. kTooLarge if the value exceeds the flavor's
  /// cap (SDBM: 1 KB). Replacement appends; old bytes become garbage.
  virtual Status store(std::string_view key, std::string_view value) = 0;

  /// kNotFound for missing keys.
  virtual Result<std::string> fetch(std::string_view key) const = 0;

  virtual bool contains(std::string_view key) const = 0;

  /// kNotFound if absent. Appends a tombstone; space reclaimed only by
  /// compact().
  virtual Status remove(std::string_view key) = 0;

  /// All live keys, in unspecified order.
  virtual std::vector<std::string> keys() const = 0;

  virtual size_t size() const = 0;

  /// Manual garbage collection: rewrites the file with live records
  /// only (the initial region is preserved — it is allocation policy,
  /// not garbage).
  virtual Status compact() = 0;

  /// Ensures all buffered writes are on disk.
  virtual Status sync() = 0;

  /// Allocated bytes on disk, including the preallocated region and
  /// dead records — the §3.2.4 metric.
  virtual uint64_t file_size() const = 0;

  /// Bytes occupied by live records only (key+value+framing).
  virtual uint64_t live_bytes() const = 0;

  virtual Flavor flavor() const = 0;
};

/// Creates a new database (kAlreadyExists if the file exists).
Result<std::unique_ptr<Dbm>> create_dbm(const std::filesystem::path& path,
                                        Flavor flavor);
Result<std::unique_ptr<Dbm>> create_dbm(const std::filesystem::path& path,
                                        Flavor flavor,
                                        const DbmOptions& options);

/// Opens an existing database; flavor and options are read from the
/// file header. kNotFound if missing, kMalformed on corruption.
Result<std::unique_ptr<Dbm>> open_dbm(const std::filesystem::path& path);

/// Opens if present, otherwise creates with the flavor's defaults.
Result<std::unique_ptr<Dbm>> open_or_create_dbm(
    const std::filesystem::path& path, Flavor flavor);

}  // namespace davpse::dbm
