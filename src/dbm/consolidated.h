// Consolidated key/value store for resource metadata: the scalable
// alternative to the one-DBM-file-per-resource layout. All resources'
// properties live in one store directory —
//
//   <dir>/wal.log            write-ahead log (group-committed batches)
//   <dir>/shard-NNN.gG.kv    checkpointed shard images, generation G
//   <dir>/MANIFEST           {generation, checkpoint_seq} commit point
//
// Writes append a CRC-framed batch record to the WAL under group
// commit (concurrent writers share one flush), then become visible in
// the in-memory shard maps. A checkpoint rewrites the shard images
// under a fresh generation, atomically publishes them via MANIFEST,
// and truncates the WAL; recovery loads the manifest's generation and
// replays WAL records with seq > checkpoint_seq, stopping at the first
// torn or corrupt record — a half-written group commit is invisible
// after reopen, never partially applied.
//
// A secondary index (property key → sorted resource set) is maintained
// on every mutation so DASL SEARCH resolves where-clauses without
// scanning resources.
//
// Thread-safe: reads take a shared state lock; writers serialize on
// the WAL. Callers (the DAV layer) additionally serialize mutations
// per resource, which keeps WAL order and visibility order identical.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace davpse::dbm {

struct ConsolidatedOptions {
  /// Number of shard files the checkpoint image is partitioned into
  /// (resources are assigned by path hash).
  size_t shard_count = 16;
  /// WAL size that triggers an automatic checkpoint after a flush.
  uint64_t checkpoint_wal_bytes = 64ull * 1024 * 1024;
  /// Deterministic crash injection for recovery tests: after this many
  /// bytes the WAL "device" stops accepting writes mid-record and the
  /// store fails permanently (every later apply returns kUnavailable).
  /// 0 disables.
  uint64_t fail_after_wal_bytes = 0;
  /// Registry receiving "dbm.consolidated.*" counters; nullptr records
  /// into obs::Registry::global().
  obs::Registry* metrics = nullptr;
};

class ConsolidatedStore {
 public:
  /// One mutation inside an atomic batch.
  struct Op {
    enum class Kind : uint8_t {
      kSet = 1,         // resource, key, value
      kRemoveKey = 2,   // resource, key
      kRemoveTree = 3,  // resource (exact match and everything below)
      kCopyTree = 4,    // resource=from, key=to
      kMoveTree = 5,    // resource=from, key=to
    };
    Kind kind = Kind::kSet;
    std::string resource;
    std::string key;
    std::string value;

    static Op set(std::string resource, std::string key, std::string value) {
      return {Kind::kSet, std::move(resource), std::move(key),
              std::move(value)};
    }
    static Op remove_key(std::string resource, std::string key) {
      return {Kind::kRemoveKey, std::move(resource), std::move(key), {}};
    }
    static Op remove_tree(std::string resource) {
      return {Kind::kRemoveTree, std::move(resource), {}, {}};
    }
    static Op copy_tree(std::string from, std::string to) {
      return {Kind::kCopyTree, std::move(from), std::move(to), {}};
    }
    static Op move_tree(std::string from, std::string to) {
      return {Kind::kMoveTree, std::move(from), std::move(to), {}};
    }
  };

  /// Opens (creating the directory if needed) and recovers: loads the
  /// manifest's checkpoint generation, replays the WAL past it, and
  /// truncates any torn tail.
  static Result<std::unique_ptr<ConsolidatedStore>> open(
      const std::filesystem::path& dir, const ConsolidatedOptions& options);
  static Result<std::unique_ptr<ConsolidatedStore>> open(
      const std::filesystem::path& dir) {
    return open(dir, ConsolidatedOptions{});
  }

  ~ConsolidatedStore();

  /// Applies a batch atomically: WAL-append + group-commit flush, then
  /// success. On any WAL failure the store is permanently failed (the
  /// batch may or may not be durable; it is never partially durable).
  Status apply(const std::vector<Op>& batch);

  /// kNotFound for missing resource or key.
  Result<std::string> fetch(const std::string& resource,
                            const std::string& key) const;
  /// All (key, value) pairs of one resource, key-sorted.
  std::vector<std::pair<std::string, std::string>> fetch_all(
      const std::string& resource) const;
  /// One shared-lock pass over many resources. Empty `keys` = all
  /// pairs per resource; otherwise only the present requested keys.
  std::vector<std::vector<std::pair<std::string, std::string>>> fetch_many(
      const std::vector<std::string>& resources,
      const std::vector<std::string>& keys) const;

  /// Secondary index: sorted resources that define `key`.
  std::vector<std::string> resources_with_key(const std::string& key) const;

  /// Rewrites shard images and truncates the WAL. Concurrent-safe.
  Status checkpoint();

  size_t resource_count() const;
  /// Bytes of live records (the checkpoint-image size lower bound).
  uint64_t live_bytes() const;
  /// Bytes on disk: current shard images + WAL.
  uint64_t disk_bytes() const;
  uint64_t wal_bytes() const;
  size_t shard_count() const { return options_.shard_count; }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  explicit ConsolidatedStore(std::filesystem::path dir,
                             const ConsolidatedOptions& options);

  struct Shard {
    // resource path → (key → value). The outer map is hashed — point
    // lookups dominate at millions of resources and a tree walk costs
    // ~20 string compares there; checkpoint sorts names before
    // imaging to keep images deterministic. The inner map stays
    // ordered for sorted fetch_all.
    std::unordered_map<std::string, std::map<std::string, std::string>>
        resources;
  };

  size_t shard_of(const std::string& resource) const;
  /// Mutates the in-memory state (caller holds state_mutex_ exclusive).
  void apply_to_state(const std::vector<Op>& batch);
  void state_set(const std::string& resource, const std::string& key,
                 const std::string& value);
  void state_remove_key(const std::string& resource, const std::string& key);
  void state_remove_tree(const std::string& prefix);
  /// Resources at/under `prefix` ("/a" covers "/a" and "/a/...").
  std::vector<std::string> state_subtree(const std::string& prefix) const;

  Status load_checkpoint(uint64_t* checkpoint_seq, uint64_t* generation);
  Status replay_wal(uint64_t checkpoint_seq);
  /// Appends `buf` to the WAL and flushes; honors fail_after_wal_bytes.
  Status write_wal(const std::string& buf);
  void maybe_checkpoint();

  std::filesystem::path wal_path() const;
  std::filesystem::path manifest_path() const;
  std::filesystem::path shard_path(size_t shard, uint64_t generation) const;

  std::filesystem::path dir_;
  ConsolidatedOptions options_;

  // -- durable state (wal_mutex_) ---------------------------------------
  mutable std::mutex wal_mutex_;
  std::condition_variable wal_cv_;
  std::ofstream wal_;
  std::string pending_;            // serialized records awaiting flush
  uint64_t pending_last_seq_ = 0;  // seq of the last record in pending_
  uint64_t next_seq_ = 1;
  uint64_t durable_seq_ = 0;
  bool flush_in_progress_ = false;
  // Bytes in the WAL file. Atomic because the group-commit leader
  // advances it in write_wal() with wal_mutex_ released (the stream
  // itself is exclusive via flush_in_progress_); checkpoint triggers
  // and size probes read it under the lock concurrently.
  std::atomic<uint64_t> wal_written_{0};
  Status wal_status_;         // sticky failure after a WAL error
  uint64_t generation_ = 0;   // current checkpoint generation

  // -- in-memory state (state_mutex_; wal_mutex_ taken first) -----------
  mutable std::shared_mutex state_mutex_;
  std::vector<Shard> shards_;
  // key → posting list. Hashed on both levels: every property write
  // touches its posting list, while index queries are one-per-SEARCH
  // and sort their snapshot on the way out (resources_with_key).
  std::unordered_map<std::string, std::unordered_set<std::string>> index_;
  std::set<std::string> resource_names_;  // ordered, for subtree scans
  uint64_t live_bytes_ = 0;
  size_t resource_count_ = 0;

  // -- metrics ----------------------------------------------------------
  obs::Counter* batches_;
  obs::Counter* wal_flushes_;
  obs::Counter* wal_bytes_metric_;
  obs::Counter* checkpoints_;
  obs::Counter* replayed_records_;
  obs::Counter* torn_records_;
  obs::Counter* fetches_;
  obs::Counter* index_queries_;
};

}  // namespace davpse::dbm
