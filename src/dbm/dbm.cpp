#include "dbm/dbm.h"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/fs.h"

namespace davpse::dbm {
namespace {

namespace fs = std::filesystem;

/// Per-engine operation counts ("dbm.<engine>.store" / ".fetch" /
/// ".remove" / ".compact") on the global registry. Resolved once per
/// flavor; the hot path is an atomic add.
struct EngineMetrics {
  obs::Counter& store;
  obs::Counter& fetch;
  obs::Counter& remove;
  obs::Counter& compact;
};

EngineMetrics& engine_metrics(Flavor flavor) {
  auto make = [](const char* engine) {
    auto& registry = obs::Registry::global();
    std::string prefix = std::string("dbm.") + engine;
    return EngineMetrics{registry.counter(prefix + ".store"),
                         registry.counter(prefix + ".fetch"),
                         registry.counter(prefix + ".remove"),
                         registry.counter(prefix + ".compact")};
  };
  static EngineMetrics sdbm = make("sdbm");
  static EngineMetrics gdbm = make("gdbm");
  return flavor == Flavor::kSdbm ? sdbm : gdbm;
}

constexpr char kMagic[8] = {'D', 'P', 'D', 'B', 'M', '1', 0, 0};
constexpr size_t kHeaderSize = 64;
constexpr uint8_t kFlagTombstone = 0x01;

// Record framing: u32 key_len | u32 val_len | u8 flags | bytes...
constexpr size_t kRecordHeader = 4 + 4 + 1;

void put_u32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t get_u32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t get_u64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct Header {
  Flavor flavor;
  DbmOptions options;
  uint64_t data_start;  // first record offset (= max(header, initial))
};

std::string encode_header(const Header& header) {
  std::string out(kHeaderSize, '\0');
  std::memcpy(out.data(), kMagic, sizeof kMagic);
  put_u32(out.data() + 8, static_cast<uint32_t>(header.flavor));
  put_u32(out.data() + 12, static_cast<uint32_t>(kHeaderSize));
  put_u64(out.data() + 16, header.options.initial_size);
  put_u64(out.data() + 24, header.options.max_value_size);
  put_u32(out.data() + 32, header.options.write_through ? 1u : 0u);
  put_u64(out.data() + 40, header.data_start);
  return out;
}

Result<Header> decode_header(const std::string& raw) {
  if (raw.size() < kHeaderSize ||
      std::memcmp(raw.data(), kMagic, sizeof kMagic) != 0) {
    return Status(ErrorCode::kMalformed, "bad DBM magic");
  }
  Header header;
  uint32_t flavor = get_u32(raw.data() + 8);
  if (flavor != static_cast<uint32_t>(Flavor::kSdbm) &&
      flavor != static_cast<uint32_t>(Flavor::kGdbm)) {
    return Status(ErrorCode::kMalformed, "unknown DBM flavor");
  }
  header.flavor = static_cast<Flavor>(flavor);
  header.options.initial_size = get_u64(raw.data() + 16);
  header.options.max_value_size = get_u64(raw.data() + 24);
  header.options.write_through = get_u32(raw.data() + 32) != 0;
  header.data_start = get_u64(raw.data() + 40);
  if (header.data_start < kHeaderSize) {
    return Status(ErrorCode::kMalformed, "bad DBM data_start");
  }
  return header;
}

class LogHashFile final : public Dbm {
 public:
  LogHashFile(fs::path path, Header header)
      : path_(std::move(path)), header_(header) {}

  /// Creates the file: header + zero fill to the initial size.
  Status initialize() {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      return error(ErrorCode::kInternal, "cannot create " + path_.string());
    }
    std::string image = encode_header(header_);
    image.resize(header_.data_start, '\0');
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    if (!out) {
      return error(ErrorCode::kInternal, "short write creating " +
                                             path_.string());
    }
    out.close();
    append_offset_ = header_.data_start;
    return open_streams();
  }

  /// Loads an existing file: replays the record log into the index.
  Status load() {
    std::string raw;
    DAVPSE_RETURN_IF_ERROR(read_file(path_, &raw));
    if (raw.size() < header_.data_start) {
      return error(ErrorCode::kMalformed,
                   "DBM file shorter than its preallocated region");
    }
    size_t pos = header_.data_start;
    while (pos < raw.size()) {
      if (pos + kRecordHeader > raw.size()) {
        return error(ErrorCode::kMalformed,
                     "truncated record header in " + path_.string());
      }
      uint32_t key_len = get_u32(raw.data() + pos);
      uint32_t val_len = get_u32(raw.data() + pos + 4);
      uint8_t flags = static_cast<uint8_t>(raw[pos + 8]);
      size_t body = pos + kRecordHeader;
      if (body + key_len + val_len > raw.size()) {
        return error(ErrorCode::kMalformed,
                     "truncated record body in " + path_.string());
      }
      std::string key = raw.substr(body, key_len);
      if (flags & kFlagTombstone) {
        index_.erase(key);
      } else {
        index_[std::move(key)] =
            Entry{body + key_len, val_len};
      }
      pos = body + key_len + val_len;
    }
    append_offset_ = raw.size();
    return open_streams();
  }

  Status store(std::string_view key, std::string_view value) override {
    engine_metrics(header_.flavor).store.add(1);
    if (header_.options.max_value_size != 0 &&
        value.size() > header_.options.max_value_size) {
      return error(ErrorCode::kTooLarge,
                   "value of " + std::to_string(value.size()) +
                       " bytes exceeds engine cap of " +
                       std::to_string(header_.options.max_value_size));
    }
    uint64_t value_offset =
        append_offset_ + kRecordHeader + key.size();
    DAVPSE_RETURN_IF_ERROR(append_record(key, value, /*flags=*/0));
    index_[std::string(key)] =
        Entry{value_offset, static_cast<uint32_t>(value.size())};
    return Status::ok();
  }

  Result<std::string> fetch(std::string_view key) const override {
    engine_metrics(header_.flavor).fetch.add(1);
    auto it = index_.find(std::string(key));
    if (it == index_.end()) {
      return Status(ErrorCode::kNotFound,
                    "no such key: " + std::string(key));
    }
    // Reads go through the write stream's view of the file, so flush
    // buffered appends first when the entry lies past the synced size.
    const_cast<LogHashFile*>(this)->flush_writes();
    std::ifstream in(path_, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kInternal, "cannot reopen " + path_.string());
    }
    std::string value(it->second.length, '\0');
    in.seekg(static_cast<std::streamoff>(it->second.offset));
    in.read(value.data(), static_cast<std::streamsize>(value.size()));
    if (!in) {
      return Status(ErrorCode::kInternal, "short value read in " +
                                              path_.string());
    }
    return value;
  }

  bool contains(std::string_view key) const override {
    return index_.contains(std::string(key));
  }

  Status remove(std::string_view key) override {
    engine_metrics(header_.flavor).remove.add(1);
    auto it = index_.find(std::string(key));
    if (it == index_.end()) {
      return error(ErrorCode::kNotFound, "no such key: " + std::string(key));
    }
    DAVPSE_RETURN_IF_ERROR(append_record(key, "", kFlagTombstone));
    index_.erase(it);
    return Status::ok();
  }

  std::vector<std::string> keys() const override {
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto& [key, entry] : index_) out.push_back(key);
    return out;
  }

  size_t size() const override { return index_.size(); }

  Status compact() override {
    engine_metrics(header_.flavor).compact.add(1);
    flush_writes();
    // Snapshot live pairs, rewrite into a fresh file, swap.
    std::vector<std::pair<std::string, std::string>> live;
    live.reserve(index_.size());
    for (const auto& [key, entry] : index_) {
      auto value = fetch(key);
      if (!value.ok()) return value.status();
      live.emplace_back(key, std::move(value).value());
    }
    out_.close();
    fs::path tmp = path_;
    tmp += ".compact";
    {
      LogHashFile fresh(tmp, header_);
      DAVPSE_RETURN_IF_ERROR(fresh.initialize());
      for (auto& [key, value] : live) {
        DAVPSE_RETURN_IF_ERROR(fresh.store(key, value));
      }
      DAVPSE_RETURN_IF_ERROR(fresh.sync());
      index_ = std::move(fresh.index_);
      append_offset_ = fresh.append_offset_;
    }
    std::error_code ec;
    fs::rename(tmp, path_, ec);
    if (ec) {
      return error(ErrorCode::kInternal,
                   "compact rename failed: " + ec.message());
    }
    return open_streams();
  }

  Status sync() override {
    flush_writes();
    return out_.good() ? Status::ok()
                       : error(ErrorCode::kInternal,
                               "flush failed on " + path_.string());
  }

  uint64_t file_size() const override {
    const_cast<LogHashFile*>(this)->flush_writes();
    std::error_code ec;
    auto size = fs::file_size(path_, ec);
    return ec ? 0 : static_cast<uint64_t>(size);
  }

  uint64_t live_bytes() const override {
    uint64_t total = 0;
    for (const auto& [key, entry] : index_) {
      total += kRecordHeader + key.size() + entry.length;
    }
    return total;
  }

  Flavor flavor() const override { return header_.flavor; }

 private:
  struct Entry {
    uint64_t offset;  // value offset in file
    uint32_t length;
  };

  Status open_streams() {
    out_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
    if (!out_) {
      return error(ErrorCode::kInternal, "cannot open " + path_.string());
    }
    out_.seekp(0, std::ios::end);
    return Status::ok();
  }

  Status append_record(std::string_view key, std::string_view value,
                       uint8_t flags) {
    char header[kRecordHeader];
    put_u32(header, static_cast<uint32_t>(key.size()));
    put_u32(header + 4, static_cast<uint32_t>(value.size()));
    header[8] = static_cast<char>(flags);
    out_.seekp(static_cast<std::streamoff>(append_offset_));
    out_.write(header, sizeof header);
    out_.write(key.data(), static_cast<std::streamsize>(key.size()));
    out_.write(value.data(), static_cast<std::streamsize>(value.size()));
    if (!out_) {
      return error(ErrorCode::kInternal,
                   "append failed on " + path_.string());
    }
    append_offset_ += kRecordHeader + key.size() + value.size();
    if (header_.options.write_through) out_.flush();
    return Status::ok();
  }

  void flush_writes() {
    if (out_.is_open()) out_.flush();
  }

  fs::path path_;
  Header header_;
  std::fstream out_;
  uint64_t append_offset_ = 0;
  std::unordered_map<std::string, Entry> index_;
};

}  // namespace

DbmOptions default_options(Flavor flavor) {
  DbmOptions options;
  switch (flavor) {
    case Flavor::kSdbm:
      options.initial_size = 8 * 1024;
      options.max_value_size = 1024;
      options.write_through = true;
      break;
    case Flavor::kGdbm:
      options.initial_size = 25 * 1024;
      options.max_value_size = 0;
      options.write_through = false;
      break;
  }
  return options;
}

Result<std::unique_ptr<Dbm>> create_dbm(const fs::path& path, Flavor flavor) {
  return create_dbm(path, flavor, default_options(flavor));
}

Result<std::unique_ptr<Dbm>> create_dbm(const fs::path& path, Flavor flavor,
                                        const DbmOptions& options) {
  std::error_code ec;
  if (fs::exists(path, ec)) {
    return Status(ErrorCode::kAlreadyExists,
                  "DBM file exists: " + path.string());
  }
  Header header;
  header.flavor = flavor;
  header.options = options;
  header.data_start = std::max<uint64_t>(kHeaderSize, options.initial_size);
  auto db = std::make_unique<LogHashFile>(path, header);
  DAVPSE_RETURN_IF_ERROR(db->initialize());
  return std::unique_ptr<Dbm>(std::move(db));
}

Result<std::unique_ptr<Dbm>> open_dbm(const fs::path& path) {
  std::string raw_header(kHeaderSize, '\0');
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kNotFound, "no DBM file: " + path.string());
    }
    in.read(raw_header.data(), kHeaderSize);
    if (!in) {
      return Status(ErrorCode::kMalformed,
                    "DBM file too small: " + path.string());
    }
  }
  auto header = decode_header(raw_header);
  if (!header.ok()) return header.status();
  auto db = std::make_unique<LogHashFile>(path, header.value());
  DAVPSE_RETURN_IF_ERROR(db->load());
  return std::unique_ptr<Dbm>(std::move(db));
}

Result<std::unique_ptr<Dbm>> open_or_create_dbm(const fs::path& path,
                                                Flavor flavor) {
  std::error_code ec;
  if (fs::exists(path, ec)) return open_dbm(path);
  return create_dbm(path, flavor);
}

}  // namespace davpse::dbm
