#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/build_info.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace davpse::obs {
namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:]. Dots and any other
/// separators collapse to '_'; a leading digit gains a '_' guard.
std::string prometheus_name(std::string_view name) {
  std::string out = "davpse_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void Histogram::observe(double seconds) {
  if (seconds < 0) seconds = 0;
  size_t bucket = kBucketBounds.size();  // overflow by default
  for (size_t i = 0; i < kBucketBounds.size(); ++i) {
    if (seconds <= kBucketBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
  if (!exemplars_enabled_.load(std::memory_order_acquire)) return;
  TraceContext* trace = TraceContext::current();
  if (trace == nullptr) return;
  double now = unix_time_seconds();
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  Exemplar& slot = (*exemplars_)[bucket];
  // Keep the slowest observation of the window; a stale exemplar loses
  // its seat to any fresh observation.
  bool stale = now - slot.unix_seconds > kExemplarWindowSeconds;
  if (!slot.trace_id.empty() && !stale && seconds < slot.value_seconds) return;
  slot.value_seconds = seconds;
  slot.unix_seconds = now;
  slot.trace_id = trace->trace_id();
}

void Histogram::enable_exemplars() {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (exemplars_ == nullptr) {
    exemplars_ =
        std::make_unique<std::array<Exemplar, kBucketBounds.size() + 1>>();
  }
  exemplars_enabled_.store(true, std::memory_order_release);
}

std::optional<Exemplar> Histogram::Snapshot::slowest_exemplar() const {
  for (size_t i = exemplars.size(); i > 0; --i) {
    if (exemplars[i - 1].has_value()) return exemplars[i - 1];
  }
  return std::nullopt;
}

double Histogram::percentile_of(
    uint64_t target, const std::array<uint64_t, 25>& buckets) const {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return i < kBucketBounds.size() ? kBucketBounds[i]
                                      : kBucketBounds.back();
    }
  }
  return kBucketBounds.back();
}

Histogram::Snapshot Histogram::snapshot() const {
  // Relaxed per-bucket loads: a snapshot racing concurrent observes is
  // approximate by design (counts lag by at most the in-flight ops).
  std::array<uint64_t, 25> buckets{};
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  Snapshot snap;
  snap.buckets = buckets;
  if (exemplars_enabled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    for (size_t i = 0; i < exemplars_->size(); ++i) {
      if (!(*exemplars_)[i].trace_id.empty()) {
        snap.exemplars[i] = (*exemplars_)[i];
      }
    }
  }
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  snap.count = total;
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e9;
  if (total > 0) {
    auto rank = [total](double p) {
      uint64_t r = static_cast<uint64_t>(p * static_cast<double>(total));
      return std::max<uint64_t>(1, std::min(r + 1, total));
    };
    snap.p50 = percentile_of(rank(0.50), buckets);
    snap.p95 = percentile_of(rank(0.95), buckets);
    snap.p99 = percentile_of(rank(0.99), buckets);
  }
  return snap;
}

uint64_t RegistrySnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t RegistrySnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

Histogram::Snapshot RegistrySnapshot::histogram(std::string_view name) const {
  auto it = histograms.find(std::string(name));
  return it == histograms.end() ? Histogram::Snapshot{} : it->second;
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum_seconds\": " +
           json_double(h.sum_seconds) + ", \"p50\": " + json_double(h.p50) +
           ", \"p95\": " + json_double(h.p95) + ", \"p99\": " +
           json_double(h.p99);
    bool any_exemplar = false;
    for (const auto& exemplar : h.exemplars) {
      if (exemplar.has_value()) {
        any_exemplar = true;
        break;
      }
    }
    if (any_exemplar) {
      out += ", \"exemplars\": [";
      bool first_exemplar = true;
      for (size_t i = 0; i < h.exemplars.size(); ++i) {
        if (!h.exemplars[i].has_value()) continue;
        if (!first_exemplar) out += ", ";
        first_exemplar = false;
        std::string le = i < Histogram::kBucketBounds.size()
                             ? json_double(Histogram::kBucketBounds[i])
                             : "+Inf";
        out += "{\"le\": \"" + le + "\", \"trace_id\": \"" +
               json_escape(h.exemplars[i]->trace_id) +
               "\", \"value_seconds\": " +
               json_double(h.exemplars[i]->value_seconds) +
               ", \"unix_seconds\": " +
               json_double(h.exemplars[i]->unix_seconds) + "}";
      }
      out += "]";
    }
    out += "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  // Process identity: who is answering this scrape, since when, built
  // how — the metadata an operator needs before trusting any number
  // above it.
  out += "  \"process\": {\"start_unix_seconds\": " +
         json_double(process_start_unix_seconds()) +
         ", \"uptime_seconds\": " + json_double(process_uptime_seconds()) +
         ", \"build_type\": \"" + json_escape(build_type()) +
         "\", \"git_describe\": \"" + json_escape(git_describe()) + "\"}\n}\n";
  return out;
}

std::string RegistrySnapshot::to_prometheus() const {
  std::string out;
  // Who/what/since-when, Prometheus-style: an info gauge carrying the
  // build identity as labels (value constant 1, joinable onto any other
  // series) plus the standard process start-time/uptime gauges.
  out += "# TYPE davpse_build_info gauge\n";
  out += "davpse_build_info{build_type=\"" + json_escape(build_type()) +
         "\",git_describe=\"" + json_escape(git_describe()) + "\"} 1\n";
  out += "# TYPE davpse_process_start_time_seconds gauge\n";
  out += "davpse_process_start_time_seconds " +
         json_double(process_start_unix_seconds()) + "\n";
  out += "# TYPE davpse_process_uptime_seconds gauge\n";
  out += "davpse_process_uptime_seconds " +
         json_double(process_uptime_seconds()) + "\n";
  for (const auto& [name, value] : counters) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    // OpenMetrics exemplar annotation: "<sample> # {labels} value ts".
    // Prometheus text parsers that predate exemplars treat the suffix
    // as a comment; OpenMetrics scrapers link the bucket to its trace.
    auto exemplar_suffix = [&h](size_t bucket) {
      if (!h.exemplars[bucket].has_value()) return std::string();
      const Exemplar& e = *h.exemplars[bucket];
      return " # {trace_id=\"" + json_escape(e.trace_id) + "\"} " +
             json_double(e.value_seconds) + " " + json_double(e.unix_seconds);
    };
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBucketBounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += pname + "_bucket{le=\"" +
             json_double(Histogram::kBucketBounds[i]) + "\"} " +
             std::to_string(cumulative) + exemplar_suffix(i) + "\n";
    }
    cumulative += h.buckets[Histogram::kBucketBounds.size()];
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           exemplar_suffix(Histogram::kBucketBounds.size()) + "\n";
    out += pname + "_sum " + json_double(h.sum_seconds) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::shared_lock lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace davpse::obs
