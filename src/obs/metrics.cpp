#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace davpse::obs {
namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:]. Dots and any other
/// separators collapse to '_'; a leading digit gains a '_' guard.
std::string prometheus_name(std::string_view name) {
  std::string out = "davpse_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void Histogram::observe(double seconds) {
  if (seconds < 0) seconds = 0;
  size_t bucket = kBucketBounds.size();  // overflow by default
  for (size_t i = 0; i < kBucketBounds.size(); ++i) {
    if (seconds <= kBucketBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

double Histogram::percentile_of(
    uint64_t target, const std::array<uint64_t, 25>& buckets) const {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return i < kBucketBounds.size() ? kBucketBounds[i]
                                      : kBucketBounds.back();
    }
  }
  return kBucketBounds.back();
}

Histogram::Snapshot Histogram::snapshot() const {
  // Relaxed per-bucket loads: a snapshot racing concurrent observes is
  // approximate by design (counts lag by at most the in-flight ops).
  std::array<uint64_t, 25> buckets{};
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  Snapshot snap;
  snap.buckets = buckets;
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  snap.count = total;
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e9;
  if (total > 0) {
    auto rank = [total](double p) {
      uint64_t r = static_cast<uint64_t>(p * static_cast<double>(total));
      return std::max<uint64_t>(1, std::min(r + 1, total));
    };
    snap.p50 = percentile_of(rank(0.50), buckets);
    snap.p95 = percentile_of(rank(0.95), buckets);
    snap.p99 = percentile_of(rank(0.99), buckets);
  }
  return snap;
}

uint64_t RegistrySnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t RegistrySnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

Histogram::Snapshot RegistrySnapshot::histogram(std::string_view name) const {
  auto it = histograms.find(std::string(name));
  return it == histograms.end() ? Histogram::Snapshot{} : it->second;
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum_seconds\": " +
           json_double(h.sum_seconds) + ", \"p50\": " + json_double(h.p50) +
           ", \"p95\": " + json_double(h.p95) + ", \"p99\": " +
           json_double(h.p99) + "}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string RegistrySnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBucketBounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += pname + "_bucket{le=\"" +
             json_double(Histogram::kBucketBounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += h.buckets[Histogram::kBucketBounds.size()];
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += pname + "_sum " + json_double(h.sum_seconds) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::shared_lock lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace davpse::obs
