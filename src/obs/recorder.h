// Flight recorder: the time dimension the metrics registry lacks. The
// registry's counters are cumulative since process start — a scrape
// can answer "how many requests ever" but not "what is the shed rate
// *right now*". The recorder runs a background sampler that snapshots
// a Registry into a fixed-size time ring and serves two derived views:
//
//   GET /.well-known/history — windowed deltas and per-second rates
//   (1s / 10s / 60s) for every counter, min/now/max for every gauge,
//   plus derived scheduler signals (shed rate, worker utilization,
//   request rate) computed from the reactor telemetry counters.
//
//   GET /.well-known/health — a load-derived readiness verdict
//   (ok / degraded / overloaded) from the shed rate, worker
//   utilization, and dispatch-queue depth over a sliding window, with
//   the reasons spelled out. Serving layers map overloaded to 503 so
//   the endpoint works as a readiness probe.
//
// The sampler thread takes one Registry::snapshot() per interval
// (default 1 s) — the same lock-cheap path a scrape takes — so the
// recorder's overhead is one scrape per second regardless of traffic.
// All analysis happens at read time on the ring; the sample path never
// computes rates.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace davpse::obs {

struct RecorderConfig {
  /// Seconds between background samples. The default 1 s ring covers
  /// the 60 s window with 60 samples; tests drive sample_now() by hand
  /// and can set this large to silence the thread.
  double interval_seconds = 1.0;
  /// Ring capacity in samples (oldest evicted first). 128 at 1 s
  /// covers the 60 s window with headroom for irregular sampling.
  size_t capacity = 128;
  /// Registry to sample; nullptr samples Registry::global().
  Registry* metrics = nullptr;

  // --- health verdict thresholds -----------------------------------
  /// Window the verdict is computed over (clamped to what the ring
  /// holds).
  double health_window_seconds = 10.0;
  /// Worker utilization at or above this is degraded.
  double degraded_utilization = 0.85;
  /// Fraction of arrivals shed at or above this is overloaded; any
  /// shedding at all is at least degraded.
  double overloaded_shed_rate = 0.05;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderConfig config);
  ~FlightRecorder();  // stop()

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Takes an immediate first sample and starts the sampler thread.
  Status start();
  /// Joins the sampler thread. Idempotent; the ring stays readable.
  void stop();

  /// Takes one sample synchronously (also the test hook — windows can
  /// be filled without waiting out the interval).
  void sample_now();

  /// Samples currently retained.
  size_t sample_count() const;

  /// The /.well-known/history response body: windowed counter deltas
  /// and rates, gauge envelopes, and derived scheduler signals for the
  /// 1s/10s/60s windows (each clamped to the span the ring holds).
  std::string history_json() const;

  enum class Verdict { kOk, kDegraded, kOverloaded };
  static const char* verdict_name(Verdict verdict);

  /// One health evaluation over the configured window.
  struct Health {
    Verdict verdict = Verdict::kOk;
    std::vector<std::string> reasons;  // why not ok (empty when ok)
    double window_seconds = 0;         // actual span evaluated
    double shed_rate = 0;              // shed / (admitted + shed)
    double worker_utilization = 0;     // busy time / capacity, 0..1
    int64_t dispatch_depth = 0;        // latest run-queue depth
    int64_t in_flight = 0;             // latest worker-active gauge
    int64_t parked = 0;                // latest parked-connection gauge
    double uptime_seconds = 0;
  };
  Health health() const;

  /// The /.well-known/health response body.
  std::string health_json() const;

  const RecorderConfig& config() const { return config_; }

 private:
  struct Sample {
    double unix_seconds = 0;
    double wall_seconds = 0;
    RegistrySnapshot snap;
  };

  /// Derived scheduler signals between two samples.
  struct WindowStats {
    double span_seconds = 0;
    uint64_t shed_delta = 0;
    double shed_rate = 0;
    double worker_utilization = 0;
    double requests_per_second = 0;
    int64_t dispatch_depth_min = 0;
    int64_t dispatch_depth_max = 0;
  };

  void sampler_loop();
  /// Index of the retained sample closest to `target_wall`; requires a
  /// non-empty ring (caller holds mutex_).
  size_t base_index_locked(double target_wall) const;
  WindowStats window_stats_locked(size_t base_index) const;

  RecorderConfig config_;
  Registry& metrics_;
  Counter& samples_metric_;

  mutable std::mutex mutex_;
  std::deque<Sample> samples_;

  std::mutex thread_mutex_;  // guards running_/cv for start/stop
  std::condition_variable stop_cv_;
  std::thread sampler_;
  bool running_ = false;
};

}  // namespace davpse::obs
