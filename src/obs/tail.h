// Tail sampling: keep the whole story of the requests that matter.
// The metrics registry answers "how slow is p99" but not "why was
// *that* request slow" — the TailSampler retains the complete nested
// span tree (see SpanRecord::parent_id) for the N slowest requests
// observed so far plus every request over a configurable latency
// threshold, bounded in both directions so a traffic flood can never
// grow memory without limit. `GET /.well-known/traces` serves the
// retained timelines as nested JSON.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace davpse::obs {

/// One retained request: the scope's wall interval plus every span
/// finished under it (completion order — innermost spans first).
struct TraceTimeline {
  std::string trace_id;
  double start_seconds = 0;     // wall clock at scope open
  double duration_seconds = 0;  // whole-scope wall duration
  /// Force-retained (TraceScope::force_retain — e.g. the stall
  /// watchdog): kept in the threshold pool regardless of duration.
  bool pinned = false;
  std::vector<SpanRecord> spans;
};

/// Bounded two-pool retention. Thread-safe; offer() is O(log N) against
/// the slowest-heap and O(1) against the threshold pool, so calling it
/// once per request is cheap even when nothing is retained.
class TailSampler {
 public:
  struct Config {
    /// How many of the slowest-ever requests to keep (min-heap evicts
    /// the fastest retained trace when a slower one arrives).
    size_t slowest_capacity = 32;
    /// Requests at or above this duration are always retained...
    double threshold_seconds = 0.5;
    /// ...up to this many (oldest evicted first).
    size_t threshold_capacity = 128;
  };

  TailSampler() : TailSampler(Config{}) {}
  explicit TailSampler(Config config) : config_(config) {}

  /// Considers one finished request for retention.
  void offer(TraceTimeline timeline);

  /// Every retained timeline, slowest first, deduplicated by trace id.
  std::vector<TraceTimeline> snapshot() const;
  /// Retained timeline for one trace id; nullopt when not retained.
  std::optional<TraceTimeline> find(std::string_view trace_id) const;
  void clear();

  /// {"traces": [...]} — each retained timeline with its spans nested
  /// by parent/child linkage (children ordered by start time). The
  /// /.well-known/traces response body.
  std::string to_json() const;

  const Config& config() const { return config_; }

  /// Process-wide default sampler; servers fall back here when
  /// configured with nullptr.
  static TailSampler& global();

 private:
  std::vector<TraceTimeline> retained_locked() const;

  Config config_;
  mutable std::mutex mutex_;
  std::vector<TraceTimeline> slowest_;      // min-heap by duration
  std::deque<TraceTimeline> over_threshold_;  // FIFO, bounded
};

}  // namespace davpse::obs
