#include "obs/eventlog.h"

#include <cstdio>

#include "obs/json.h"

namespace davpse::obs {
namespace {

/// Epoch timestamps need full sub-second digits; %.9g would round a
/// 2001-era epoch to whole seconds.
std::string epoch_json(double unix_seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", unix_seconds);
  return buf;
}

}  // namespace

EventLog::EventLog(EventLogConfig config)
    : config_(std::move(config)),
      metrics_(registry_or_global(config_.metrics)),
      accepted_metric_(metrics_.counter("obs.eventlog.accepted")),
      dropped_metric_(metrics_.counter("obs.eventlog.dropped")),
      written_metric_(metrics_.counter("obs.eventlog.written")),
      rotations_metric_(metrics_.counter("obs.eventlog.rotations")) {}

EventLog::~EventLog() { stop(); }

Status EventLog::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::ok();
  if (config_.path.empty()) {
    return error(ErrorCode::kInvalidArgument, "event log path is empty");
  }
  file_ = std::fopen(config_.path.c_str(), "ab");
  if (file_ == nullptr) {
    return error(ErrorCode::kInternal,
                 "cannot open event log " + config_.path.string());
  }
  std::error_code ec;
  auto existing = std::filesystem::file_size(config_.path, ec);
  file_bytes_ = ec ? 0 : existing;
  started_ = true;
  writer_ = std::thread([this] { writer_loop(); });
  return Status::ok();
}

void EventLog::stop() {
  if (sink_attached_) {
    set_log_sink(nullptr);
    sink_attached_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  drain_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool EventLog::enqueue(Event event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    if (queue_.size() >= config_.queue_capacity) {
      dropped_metric_.add(1);
      return false;
    }
    queue_.push_back(std::move(event));
  }
  accepted_metric_.add(1);
  queue_cv_.notify_one();
  return true;
}

bool EventLog::log_access(AccessRecord record) {
  return enqueue(std::move(record));
}

bool EventLog::log_line(LogRecord record) { return enqueue(std::move(record)); }

void EventLog::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_) return;
  drain_cv_.wait(lock, [&] {
    return stopping_ || (queue_.empty() && in_flight_ == 0);
  });
}

void EventLog::attach_log_sink() {
  sink_attached_ = true;
  set_log_sink([this](LogLevel level, double unix_seconds,
                      uint64_t thread_id, const std::string& message) {
    LogRecord record;
    record.unix_seconds = unix_seconds;
    record.level = level;
    record.thread_id = thread_id;
    record.message = message;
    log_line(std::move(record));
  });
}

std::string EventLog::to_json_line(const AccessRecord& record) {
  std::string out = "{\"kind\": \"access\"";
  out += ", \"ts\": " + epoch_json(record.unix_seconds);
  out += ", \"method\": \"" + json_escape(record.method) + "\"";
  out += ", \"path\": \"" + json_escape(record.path) + "\"";
  out += ", \"status\": " + std::to_string(record.status);
  out += ", \"bytes_in\": " + std::to_string(record.bytes_in);
  out += ", \"bytes_out\": " + std::to_string(record.bytes_out);
  out += ", \"duration_seconds\": " + json_double(record.duration_seconds);
  out += ", \"trace_id\": \"" + json_escape(record.trace_id) + "\"";
  out += ", \"daemon\": " + std::to_string(record.daemon_id);
  out += ", \"keepalive_reuse\": ";
  out += record.keepalive_reuse ? "true" : "false";
  if (!record.event.empty()) {
    out += ", \"event\": \"" + json_escape(record.event) + "\"";
  }
  out += "}";
  return out;
}

std::string EventLog::to_json_line(const LogRecord& record) {
  std::string out = "{\"kind\": \"log\"";
  out += ", \"ts\": " + epoch_json(record.unix_seconds);
  out += ", \"level\": \"";
  out += log_level_name(record.level);
  out += "\", \"thread\": " + std::to_string(record.thread_id);
  out += ", \"message\": \"" + json_escape(record.message) + "\"";
  out += "}";
  return out;
}

void EventLog::writer_loop() {
  for (;;) {
    std::deque<Event> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and fully drained
      batch.swap(queue_);
      in_flight_ = batch.size();
    }
    for (const Event& event : batch) {
      write_line(std::visit(
          [](const auto& record) { return to_json_line(record); }, event));
    }
    if (file_ != nullptr) std::fflush(file_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = 0;
      if (queue_.empty()) drain_cv_.notify_all();
    }
  }
}

void EventLog::write_line(const std::string& line) {
  if (file_ == nullptr) return;  // rotation lost the file; drop quietly
  if (file_bytes_ > 0 && file_bytes_ + line.size() + 1 > config_.rotate_bytes) {
    rotate();
    if (file_ == nullptr) return;
  }
  // No DAVPSE_LOG in here: the log sink may feed this queue, and a
  // write-failure message would loop straight back to this thread.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    std::fprintf(stderr, "[ERROR] event log write failed: %s\n",
                 config_.path.c_str());
  }
  file_bytes_ += line.size() + 1;
  written_metric_.add(1);
}

void EventLog::rotate() {
  std::fflush(file_);
  std::fclose(file_);
  std::error_code ec;
  if (config_.max_rotated_files == 0) {
    std::filesystem::remove(config_.path, ec);
  } else {
    // Shift file.N-1 -> file.N, ..., file -> file.1; the oldest falls
    // off the end.
    auto rotated = [&](size_t n) {
      return std::filesystem::path(config_.path.string() + "." +
                                   std::to_string(n));
    };
    std::filesystem::remove(rotated(config_.max_rotated_files), ec);
    for (size_t n = config_.max_rotated_files; n > 1; --n) {
      std::filesystem::rename(rotated(n - 1), rotated(n), ec);
    }
    std::filesystem::rename(config_.path, rotated(1), ec);
  }
  file_ = std::fopen(config_.path.c_str(), "wb");
  if (file_ == nullptr) {
    // Reopen in place as a last resort; losing rotation beats crashing
    // the writer.
    file_ = std::fopen(config_.path.c_str(), "ab");
  }
  file_bytes_ = 0;
  rotations_metric_.add(1);
}

}  // namespace davpse::obs
