// Process identity for the observability expositions: which build is
// answering this scrape, and since when. The git revision and build
// type are baked in at compile time by src/obs/CMakeLists.txt; the
// start time is captured once at static-init so every exposition path
// (stats JSON, Prometheus build_info gauge, flight-recorder health)
// reports the same epoch.
#pragma once

namespace davpse::obs {

/// `git describe --always --dirty` at configure time ("unknown" when
/// the build tree had no git).
const char* git_describe();

/// CMAKE_BUILD_TYPE of this binary ("RelWithDebInfo", ...).
const char* build_type();

/// Unix time the process started (first use of this library, captured
/// during static initialization).
double process_start_unix_seconds();

/// Seconds since process_start_unix_seconds().
double process_uptime_seconds();

}  // namespace davpse::obs
