// Lock-cheap metrics registry — the measurement substrate the paper's
// Tables 1–3 imply but never had: every layer of the Fig. 2 stack
// (HTTP server/client, DAV server, property store, client cache, DBM
// engines) records into named counters, gauges, and fixed-bucket
// latency histograms. Benches and the read-only
// `GET /.well-known/stats` endpoint report from the same counters, so
// "bench numbers" and "production metrics" can never drift apart.
//
// Concurrency model: metric objects are plain atomics — updates are
// wait-free and never take a lock. The registry's name→metric map is
// guarded by a shared_mutex taken shared for lookups; hot paths
// resolve their metrics once (references are stable for the registry's
// lifetime) and update lock-free thereafter.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace davpse::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (active connections, live locks, ...).
class Gauge {
 public:
  void set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One captured exemplar: the trace id of the slowest observation a
/// histogram bucket has seen within the current exemplar window — the
/// link from "the p99 bucket holds N requests" to "and *this* is one
/// of them, span tree at /.well-known/traces".
struct Exemplar {
  double value_seconds = 0;  // the observation itself
  double unix_seconds = 0;   // wall clock when it was captured
  std::string trace_id;
};

/// Fixed-bucket latency histogram. Bucket upper bounds follow a 1-2-5
/// ladder from 1 µs to 50 s (plus an overflow bucket); percentile
/// snapshots report the upper bound of the bucket containing the
/// target rank — a deliberate, bounded over-estimate.
///
/// Exemplars are opt-in (enable_exemplars()): when enabled, observe()
/// additionally records the trace id of the slowest observation per
/// bucket within a rolling kExemplarWindowSeconds window, taken from
/// the calling thread's TraceContext (no context → no exemplar). The
/// capture path takes a mutex, but only on enabled histograms — the
/// default observe() stays wait-free.
class Histogram {
 public:
  static constexpr std::array<double, 24> kBucketBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4,
      5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
      2e-1, 5e-1, 1e0,  2e0,  5e0,  1e1,  2e1,  5e1};

  /// An exemplar older than this is replaced by the next observation
  /// in its bucket regardless of value, so a one-off spike from hours
  /// ago cannot shadow what "slow" looks like now.
  static constexpr double kExemplarWindowSeconds = 60.0;

  void observe(double seconds);

  /// Turns on per-bucket exemplar capture (idempotent, thread-safe).
  void enable_exemplars();
  bool exemplars_enabled() const {
    return exemplars_enabled_.load(std::memory_order_acquire);
  }

  struct Snapshot {
    uint64_t count = 0;
    double sum_seconds = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    /// Per-bucket observation counts (not cumulative); the last entry
    /// is the overflow bucket. Full fidelity for the Prometheus
    /// exposition, which emits these as cumulative `le` buckets.
    std::array<uint64_t, kBucketBounds.size() + 1> buckets{};
    /// Per-bucket exemplars (same indexing); engaged only for buckets
    /// that captured one on an exemplar-enabled histogram.
    std::array<std::optional<Exemplar>, kBucketBounds.size() + 1> exemplars{};

    /// Exemplar of the highest non-empty bucket — the closest retained
    /// trace to "the slowest request this histogram has seen lately".
    std::optional<Exemplar> slowest_exemplar() const;
  };
  Snapshot snapshot() const;

 private:
  /// Upper bound of the bucket containing rank `target` (1-based).
  double percentile_of(uint64_t target,
                       const std::array<uint64_t, 25>& buckets) const;

  std::array<std::atomic<uint64_t>, kBucketBounds.size() + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};

  std::atomic<bool> exemplars_enabled_{false};
  mutable std::mutex exemplar_mutex_;
  /// Allocated lazily by enable_exemplars(); guarded by exemplar_mutex_.
  std::unique_ptr<std::array<Exemplar, kBucketBounds.size() + 1>> exemplars_;
};

/// Point-in-time copy of every metric in a registry, plus a JSON
/// serialization (the `/.well-known/stats` response body).
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Counter value, 0 when the name was never registered.
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  /// Histogram snapshot; an all-zero snapshot when never registered.
  Histogram::Snapshot histogram(std::string_view name) const;

  std::string to_json() const;

  /// Prometheus text exposition (format 0.0.4): counters and gauges as
  /// single samples, histograms with cumulative `le` buckets, `_sum`,
  /// and `_count` — the full bucket fidelity the JSON summary elides.
  /// Metric names are prefixed "davpse_" and sanitized to the
  /// Prometheus charset ('.' and other separators become '_'). The
  /// `/.well-known/metrics` response body.
  std::string to_prometheus() const;
};

/// Named metrics, registered on first use. References returned by
/// counter()/gauge()/histogram() stay valid for the registry's
/// lifetime, so callers cache them and update without locking.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  RegistrySnapshot snapshot() const;

  /// Process-wide default registry. Components take an optional
  /// `Registry*` and fall back to this when given nullptr.
  static Registry& global();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// `maybe` if non-null, the global registry otherwise.
inline Registry& registry_or_global(Registry* maybe) {
  return maybe != nullptr ? *maybe : Registry::global();
}

/// Request-path cache for the "<prefix><label>" metric families servers
/// record per method: resolves the requests counter and latency
/// histogram once per distinct label, so the per-request hot path does
/// one transparent map lookup instead of two string concatenations plus
/// two registry lookups. Metric references are stable (Registry
/// guarantees it), so cached entries never go stale.
class PerLabelMetrics {
 public:
  /// `count_prefix` names the counter family ("dav.server.requests."),
  /// `latency_prefix` the histogram family; the label (HTTP method) is
  /// appended on first sight of each label. `exemplars` enables
  /// per-bucket exemplar capture on every latency histogram the family
  /// creates.
  PerLabelMetrics(Registry& registry, std::string count_prefix,
                  std::string latency_prefix, bool exemplars = false)
      : registry_(registry),
        count_prefix_(std::move(count_prefix)),
        latency_prefix_(std::move(latency_prefix)),
        exemplars_(exemplars) {}

  /// Counts one request and records its latency for `label`.
  void record(std::string_view label, double latency_seconds) {
    const Entry& entry = resolve(label);
    entry.requests->add(1);
    entry.latency->observe(latency_seconds);
  }

 private:
  struct Entry {
    Counter* requests;
    Histogram* latency;
  };

  const Entry& resolve(std::string_view label) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      auto it = entries_.find(label);
      if (it != entries_.end()) return it->second;
    }
    Entry entry{&registry_.counter(count_prefix_ + std::string(label)),
                &registry_.histogram(latency_prefix_ + std::string(label))};
    if (exemplars_) entry.latency->enable_exemplars();
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return entries_.emplace(std::string(label), entry).first->second;
  }

  Registry& registry_;
  const std::string count_prefix_;
  const std::string latency_prefix_;
  const bool exemplars_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace davpse::obs
