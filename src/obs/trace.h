// Per-request tracing. A TraceContext carries a request id and a span
// stack for one logical request; it is installed thread-locally by a
// TraceScope and propagated between HttpClient and HttpServer via the
// `X-Trace-Id` header, so the client-side and server-side spans of one
// exchange share a trace id. Finished spans land in a bounded TraceLog
// (a ring of the most recent spans) that tests and diagnostics read;
// a TraceScope constructed with a TailSampler additionally collects
// the complete span tree and offers it for tail retention (the N
// slowest requests plus everything over a latency threshold — see
// obs/tail.h).
//
// Lifecycle:
//   TraceScope scope(generate_trace_id());     // installs the context
//   { Span span("http.client.GET"); ... }      // timed, recorded on exit
// A Span constructed with no context installed is inert — tracing is
// opt-in per thread and costs nothing when off.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace davpse::obs {

class TailSampler;

/// One finished span: what ran, under which trace, for how long.
/// `span_id` is unique within the trace (1-based, assigned in open
/// order); `parent_id` links nested spans into a tree (0 = root).
struct SpanRecord {
  std::string trace_id;
  std::string name;            // e.g. "http.server.PUT", "dav.PROPFIND"
  double start_seconds = 0;    // wall clock at span open
  double duration_seconds = 0;
  int depth = 0;               // nesting level within the trace
  uint64_t span_id = 0;
  uint64_t parent_id = 0;      // 0 when the span has no parent
};

/// Bounded ring of recently finished spans. Thread-safe.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1024) : capacity_(capacity) {}

  void record(SpanRecord span);
  std::vector<SpanRecord> snapshot() const;
  /// Spans belonging to one trace, oldest first.
  std::vector<SpanRecord> for_trace(std::string_view trace_id) const;
  void clear();

  /// Process-wide default log; scopes created with a null log record
  /// here.
  static TraceLog& global();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SpanRecord> spans_;
};

/// Process-unique trace id ("t-<hex>-<seq>").
std::string generate_trace_id();

/// The per-thread request context. Created indirectly via TraceScope.
class TraceContext {
 public:
  /// Context installed on the calling thread; nullptr when none.
  static TraceContext* current();

  const std::string& trace_id() const { return trace_id_; }
  TraceLog& log() const { return *log_; }
  int depth() const { return depth_; }

 private:
  friend class TraceScope;
  friend class Span;

  TraceContext(std::string trace_id, TraceLog* log,
               std::vector<SpanRecord>* collect)
      : trace_id_(std::move(trace_id)), log_(log), collect_(collect) {}

  std::string trace_id_;
  TraceLog* log_;
  std::vector<SpanRecord>* collect_;  // scope-owned; nullptr = ring only
  int depth_ = 0;                     // open spans
  uint64_t next_span_id_ = 0;
  uint64_t open_parent_ = 0;          // span_id of the innermost open span
};

/// RAII: installs a TraceContext as current() for this thread,
/// restoring the previous one (nested scopes are allowed but unusual).
/// `log` nullptr records spans into TraceLog::global(). When `sampler`
/// is non-null the scope collects every finished span of the trace and
/// offers the complete tree (plus the scope's own wall duration) to
/// the sampler on destruction.
class TraceScope {
 public:
  explicit TraceScope(std::string trace_id, TraceLog* log = nullptr,
                      TailSampler* sampler = nullptr);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  const std::string& trace_id() const { return context_.trace_id(); }

  /// Marks this trace for unconditional retention: the timeline offered
  /// to the sampler on destruction is pinned, so it is kept regardless
  /// of its duration (the stall watchdog's hook — a request that blew
  /// its budget must stay inspectable even when the tail pools are
  /// tuned for slower traffic). No-op without a sampler.
  void force_retain() { force_retain_ = true; }

 private:
  TailSampler* sampler_;
  bool force_retain_ = false;
  double start_seconds_ = 0;
  std::vector<SpanRecord> collected_;  // filled only when sampler_ set
  TraceContext context_;
  TraceContext* previous_;
};

/// RAII timed span recorded into the current context's TraceLog on
/// destruction. Inert (zero-cost beyond a TLS read) when no context is
/// installed.
class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceContext* context_;
  std::string name_;
  double start_seconds_ = 0;
  int depth_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

}  // namespace davpse::obs
