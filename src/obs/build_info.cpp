#include "obs/build_info.h"

#include "util/clock.h"

#ifndef DAVPSE_GIT_DESCRIBE
#define DAVPSE_GIT_DESCRIBE "unknown"
#endif
#ifndef DAVPSE_BUILD_TYPE
#define DAVPSE_BUILD_TYPE "unknown"
#endif

namespace davpse::obs {
namespace {

// Captured during static init, before main() spawns anything; "process
// start" to sub-millisecond accuracy is all uptime reporting needs.
const double g_start_unix_seconds = unix_time_seconds();

}  // namespace

const char* git_describe() { return DAVPSE_GIT_DESCRIBE; }

const char* build_type() { return DAVPSE_BUILD_TYPE; }

double process_start_unix_seconds() { return g_start_unix_seconds; }

double process_uptime_seconds() {
  return unix_time_seconds() - g_start_unix_seconds;
}

}  // namespace davpse::obs
