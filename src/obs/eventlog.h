// Async structured event log — the durable per-request record the
// paper's Apache deployment got from its access log, rebuilt as a
// first-class subsystem: request threads enqueue small records into a
// bounded MPSC queue and a dedicated writer thread serializes them as
// JSON lines (one object per line) with size-based rotation. Overload
// never blocks a request thread: when the queue is full the record is
// dropped and `obs.eventlog.dropped` incremented, so the log degrades
// under pressure instead of the service.
//
// Two record kinds share the queue: AccessRecord (one per completed
// HTTP exchange, emitted by HttpServer) and LogRecord (DAVPSE_LOG
// traffic captured via attach_log_sink()). stop()/destruction drains
// everything already queued before the file is closed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <variant>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/status.h"

namespace davpse::obs {

/// One completed HTTP exchange, as the access log sees it.
struct AccessRecord {
  double unix_seconds = 0;      // wall clock at request start
  std::string method;
  std::string path;             // request target as received
  int status = 0;
  uint64_t bytes_in = 0;        // request payload bytes off the wire
  uint64_t bytes_out = 0;       // response payload bytes onto the wire
  double duration_seconds = 0;  // head parsed -> response written
  std::string trace_id;
  int daemon_id = -1;           // serving worker; -1 = reactor thread
  bool keepalive_reuse = false;  // request rode an existing connection
  /// Non-normal exchange classifier, empty for ordinary request/
  /// response pairs: "shed" (503 refused at accept), "read_timeout"
  /// (408), "body_too_large" (413), "bad_request" (400),
  /// "silent_close" (parked fresh connection expired without a byte),
  /// "idle_expired" (keep-alive idle window elapsed), "stalled"
  /// (completed but blew the stall budget). Serialized only when set.
  std::string event;
};

/// One DAVPSE_LOG message routed into the queue.
struct LogRecord {
  double unix_seconds = 0;
  LogLevel level = LogLevel::kInfo;
  uint64_t thread_id = 0;
  std::string message;
};

struct EventLogConfig {
  /// JSON-lines output file. Rotation renames it to "<path>.1" (and
  /// shifts older rotations up) once it exceeds rotate_bytes.
  std::filesystem::path path;
  size_t queue_capacity = 4096;
  uint64_t rotate_bytes = 64ull * 1024 * 1024;
  size_t max_rotated_files = 2;  // keep <path>.1 .. <path>.N
  /// Registry receiving "obs.eventlog.*" (accepted/dropped/written/
  /// rotations); nullptr records into obs::Registry::global().
  Registry* metrics = nullptr;
};

class EventLog {
 public:
  explicit EventLog(EventLogConfig config);
  ~EventLog();  // stop()

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens the output file and starts the writer thread.
  Status start();
  /// Drains everything queued, joins the writer, closes the file.
  /// Idempotent.
  void stop();

  /// Enqueue; never blocks. False when the record was dropped (queue
  /// full, or the log is stopped).
  bool log_access(AccessRecord record);
  bool log_line(LogRecord record);

  /// Blocks until every record enqueued so far is on disk. Test/
  /// shutdown aid — request threads never call this.
  void drain();

  /// Routes util/log messages (post level-filter) into this queue as
  /// LogRecords; stop() detaches. Only one EventLog should attach.
  void attach_log_sink();

  uint64_t written() const { return written_metric_.value(); }
  uint64_t dropped() const { return dropped_metric_.value(); }
  const std::filesystem::path& path() const { return config_.path; }

  /// Serialized forms (exposed for tests).
  static std::string to_json_line(const AccessRecord& record);
  static std::string to_json_line(const LogRecord& record);

 private:
  using Event = std::variant<AccessRecord, LogRecord>;

  bool enqueue(Event event);
  void writer_loop();
  void write_line(const std::string& line);
  void rotate();

  EventLogConfig config_;
  Registry& metrics_;
  Counter& accepted_metric_;
  Counter& dropped_metric_;
  Counter& written_metric_;
  Counter& rotations_metric_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;   // writer wakeup
  std::condition_variable drain_cv_;   // drain() wakeup
  std::deque<Event> queue_;
  bool started_ = false;
  bool stopping_ = false;
  bool sink_attached_ = false;
  uint64_t in_flight_ = 0;  // dequeued but not yet on disk

  std::thread writer_;
  std::FILE* file_ = nullptr;    // writer thread only (after start)
  uint64_t file_bytes_ = 0;      // writer thread only
};

}  // namespace davpse::obs
