// Shared JSON-emission helpers for the observability layer (registry
// snapshots, tail-sampled timelines, event-log records). Not a JSON
// library — just enough escaping/formatting for machine-readable
// output whose keys are library-chosen ASCII.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace davpse::obs {

/// Minimal JSON string escaping; names are library-chosen ASCII but
/// quotes/backslashes/control bytes are handled defensively.
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable-enough rendering for metric values.
inline std::string json_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace davpse::obs
