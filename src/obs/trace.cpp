#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "obs/tail.h"
#include "util/clock.h"

namespace davpse::obs {
namespace {

thread_local TraceContext* g_current_context = nullptr;

}  // namespace

void TraceLog::record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
  while (spans_.size() > capacity_) spans_.pop_front();
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::vector<SpanRecord> TraceLog::for_trace(std::string_view trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  for (const SpanRecord& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

TraceLog& TraceLog::global() {
  static TraceLog* instance = new TraceLog();  // leaked: outlives all users
  return *instance;
}

std::string generate_trace_id() {
  // Uniqueness within the process is all the header needs; the wall
  // clock salt keeps ids distinct across restarts sharing a log.
  static std::atomic<uint64_t> sequence{0};
  uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
  uint64_t salt = static_cast<uint64_t>(wall_time_seconds() * 1e6);
  char buf[48];
  std::snprintf(buf, sizeof buf, "t-%012llx-%llu",
                static_cast<unsigned long long>(salt & 0xffffffffffffull),
                static_cast<unsigned long long>(seq));
  return buf;
}

TraceContext* TraceContext::current() { return g_current_context; }

TraceScope::TraceScope(std::string trace_id, TraceLog* log,
                       TailSampler* sampler)
    : sampler_(sampler),
      start_seconds_(wall_time_seconds()),
      context_(std::move(trace_id),
               log != nullptr ? log : &TraceLog::global(),
               sampler != nullptr ? &collected_ : nullptr),
      previous_(g_current_context) {
  g_current_context = &context_;
}

TraceScope::~TraceScope() {
  g_current_context = previous_;
  if (sampler_ == nullptr) return;
  TraceTimeline timeline;
  timeline.trace_id = context_.trace_id();
  timeline.start_seconds = start_seconds_;
  timeline.duration_seconds = wall_time_seconds() - start_seconds_;
  timeline.pinned = force_retain_;
  timeline.spans = std::move(collected_);
  sampler_->offer(std::move(timeline));
}

Span::Span(std::string name) : context_(TraceContext::current()) {
  if (context_ == nullptr) return;
  name_ = std::move(name);
  start_seconds_ = wall_time_seconds();
  depth_ = context_->depth_++;
  span_id_ = ++context_->next_span_id_;
  parent_id_ = context_->open_parent_;
  context_->open_parent_ = span_id_;
}

Span::~Span() {
  if (context_ == nullptr) return;
  context_->depth_--;
  context_->open_parent_ = parent_id_;
  SpanRecord record;
  record.trace_id = context_->trace_id();
  record.name = std::move(name_);
  record.start_seconds = start_seconds_;
  record.duration_seconds = wall_time_seconds() - start_seconds_;
  record.depth = depth_;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  if (context_->collect_ != nullptr) context_->collect_->push_back(record);
  context_->log().record(std::move(record));
}

}  // namespace davpse::obs
