#include "obs/tail.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.h"

namespace davpse::obs {
namespace {

bool slower(const TraceTimeline& a, const TraceTimeline& b) {
  return a.duration_seconds > b.duration_seconds;
}

/// Emits one span and (recursively) its children, ordered by start.
void append_span_json(const TraceTimeline& timeline,
                      const std::unordered_map<uint64_t, std::vector<size_t>>&
                          children_of,
                      size_t index, std::string* out) {
  const SpanRecord& span = timeline.spans[index];
  *out += "{\"name\": \"" + json_escape(span.name) + "\"";
  *out += ", \"span_id\": " + std::to_string(span.span_id);
  *out += ", \"parent_id\": " + std::to_string(span.parent_id);
  *out += ", \"start_offset_seconds\": " +
          json_double(span.start_seconds - timeline.start_seconds);
  *out += ", \"duration_seconds\": " + json_double(span.duration_seconds);
  *out += ", \"children\": [";
  auto kids = children_of.find(span.span_id);
  if (kids != children_of.end()) {
    bool first = true;
    for (size_t child : kids->second) {
      if (!first) *out += ", ";
      append_span_json(timeline, children_of, child, out);
      first = false;
    }
  }
  *out += "]}";
}

}  // namespace

void TailSampler::offer(TraceTimeline timeline) {
  std::lock_guard<std::mutex> lock(mutex_);
  if ((timeline.pinned ||
       timeline.duration_seconds >= config_.threshold_seconds) &&
      config_.threshold_capacity > 0) {
    over_threshold_.push_back(timeline);
    while (over_threshold_.size() > config_.threshold_capacity) {
      over_threshold_.pop_front();
    }
  }
  if (config_.slowest_capacity == 0) return;
  if (slowest_.size() < config_.slowest_capacity) {
    slowest_.push_back(std::move(timeline));
    std::push_heap(slowest_.begin(), slowest_.end(), slower);
    return;
  }
  // Heap front is the *fastest* retained trace; replace it only when
  // the newcomer is slower.
  if (timeline.duration_seconds <= slowest_.front().duration_seconds) return;
  std::pop_heap(slowest_.begin(), slowest_.end(), slower);
  slowest_.back() = std::move(timeline);
  std::push_heap(slowest_.begin(), slowest_.end(), slower);
}

std::vector<TraceTimeline> TailSampler::retained_locked() const {
  std::vector<TraceTimeline> out;
  std::unordered_set<std::string> seen;
  for (const TraceTimeline& t : slowest_) {
    if (seen.insert(t.trace_id).second) out.push_back(t);
  }
  for (const TraceTimeline& t : over_threshold_) {
    if (seen.insert(t.trace_id).second) out.push_back(t);
  }
  std::sort(out.begin(), out.end(), slower);
  return out;
}

std::vector<TraceTimeline> TailSampler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_locked();
}

std::optional<TraceTimeline> TailSampler::find(
    std::string_view trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceTimeline& t : slowest_) {
    if (t.trace_id == trace_id) return t;
  }
  for (const TraceTimeline& t : over_threshold_) {
    if (t.trace_id == trace_id) return t;
  }
  return std::nullopt;
}

void TailSampler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slowest_.clear();
  over_threshold_.clear();
}

std::string TailSampler::to_json() const {
  std::vector<TraceTimeline> traces = snapshot();
  std::string out = "{\"traces\": [";
  bool first_trace = true;
  for (const TraceTimeline& timeline : traces) {
    if (!first_trace) out += ",";
    first_trace = false;
    out += "\n  {\"trace_id\": \"" + json_escape(timeline.trace_id) + "\"";
    out += ", \"start_seconds\": " + json_double(timeline.start_seconds);
    out += ", \"duration_seconds\": " +
           json_double(timeline.duration_seconds);
    out += ", \"pinned\": ";
    out += timeline.pinned ? "true" : "false";
    out += ", \"span_count\": " + std::to_string(timeline.spans.size());
    out += ", \"spans\": [";

    // Index spans by parent, children ordered by start time. A span
    // whose parent was not collected (e.g. the ring rotated a nested
    // scope away) is treated as a root rather than dropped.
    std::unordered_map<uint64_t, std::vector<size_t>> children_of;
    std::unordered_set<uint64_t> present;
    for (const SpanRecord& span : timeline.spans) present.insert(span.span_id);
    std::vector<size_t> roots;
    for (size_t i = 0; i < timeline.spans.size(); ++i) {
      const SpanRecord& span = timeline.spans[i];
      if (span.parent_id != 0 && present.count(span.parent_id) > 0) {
        children_of[span.parent_id].push_back(i);
      } else {
        roots.push_back(i);
      }
    }
    auto by_start = [&](size_t a, size_t b) {
      return timeline.spans[a].start_seconds < timeline.spans[b].start_seconds;
    };
    for (auto& [_, kids] : children_of) {
      std::sort(kids.begin(), kids.end(), by_start);
    }
    std::sort(roots.begin(), roots.end(), by_start);

    bool first_span = true;
    for (size_t root : roots) {
      if (!first_span) out += ", ";
      append_span_json(timeline, children_of, root, &out);
      first_span = false;
    }
    out += "]}";
  }
  out += traces.empty() ? "]}\n" : "\n]}\n";
  return out;
}

TailSampler& TailSampler::global() {
  static TailSampler* instance = new TailSampler();  // leaked: outlives users
  return *instance;
}

}  // namespace davpse::obs
