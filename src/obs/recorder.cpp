#include "obs/recorder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/build_info.h"
#include "obs/json.h"
#include "util/clock.h"

namespace davpse::obs {
namespace {

// The windows /.well-known/history reports. Each is clamped to the
// span the ring actually holds, so a freshly started recorder reports
// identical (short) windows rather than lying about a 60 s rate.
constexpr double kWindowSeconds[] = {1.0, 10.0, 60.0};
constexpr const char* kWindowNames[] = {"1s", "10s", "60s"};

// Scheduler metric names the derived signals are computed from. These
// are the names HttpServer registers; a registry without them (e.g. a
// recorder pointed at a non-server registry) derives zeros.
constexpr std::string_view kShedCounter = "http.server.shed";
constexpr std::string_view kConnectionsCounter = "http.server.connections";
constexpr std::string_view kRequestPrefix = "http.server.requests.";
constexpr std::string_view kBusyPrefix = "http.server.worker_busy_micros.";
constexpr std::string_view kWorkersGauge = "http.server.workers";
constexpr std::string_view kDispatchGauge = "http.server.dispatch_depth";
constexpr std::string_view kInFlightGauge = "http.server.in_flight";
constexpr std::string_view kParkedGauge = "http.server.parked";

uint64_t delta_of(uint64_t later, uint64_t earlier) {
  return later >= earlier ? later - earlier : 0;
}

/// Sum of counter deltas for every counter whose name starts with
/// `prefix` (summed over the later snapshot's name set — a counter born
/// mid-window contributes its full value, which is also its delta).
uint64_t prefix_delta(const RegistrySnapshot& later,
                      const RegistrySnapshot& earlier,
                      std::string_view prefix) {
  uint64_t total = 0;
  for (auto it = later.counters.lower_bound(std::string(prefix));
       it != later.counters.end() && it->first.starts_with(prefix); ++it) {
    total += delta_of(it->second, earlier.counter(it->first));
  }
  return total;
}

std::string format_fixed(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(RecorderConfig config)
    : config_(config),
      metrics_(registry_or_global(config.metrics)),
      samples_metric_(metrics_.counter("obs.recorder.samples")) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.interval_seconds <= 0) config_.interval_seconds = 1.0;
  if (config_.health_window_seconds <= 0) config_.health_window_seconds = 10.0;
}

FlightRecorder::~FlightRecorder() { stop(); }

Status FlightRecorder::start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) {
    return error(ErrorCode::kAlreadyExists, "flight recorder already running");
  }
  sample_now();  // the ring is never empty once started
  running_ = true;
  sampler_ = std::thread([this] { sampler_loop(); });
  return Status::ok();
}

void FlightRecorder::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    running_ = false;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void FlightRecorder::sampler_loop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (running_) {
    bool stopped = stop_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.interval_seconds),
        [this] { return !running_; });
    if (stopped) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void FlightRecorder::sample_now() {
  Sample sample;
  sample.unix_seconds = unix_time_seconds();
  sample.wall_seconds = wall_time_seconds();
  sample.snap = metrics_.snapshot();
  samples_metric_.add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > config_.capacity) samples_.pop_front();
}

size_t FlightRecorder::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

size_t FlightRecorder::base_index_locked(double target_wall) const {
  // Ring is small (<= capacity, default 128) and wall-ordered; a linear
  // scan for the closest sample is simpler than bookkeeping an index.
  size_t best = 0;
  double best_distance = std::abs(samples_[0].wall_seconds - target_wall);
  for (size_t i = 1; i < samples_.size(); ++i) {
    double distance = std::abs(samples_[i].wall_seconds - target_wall);
    if (distance <= best_distance) {
      best = i;
      best_distance = distance;
    }
  }
  return best;
}

FlightRecorder::WindowStats FlightRecorder::window_stats_locked(
    size_t base_index) const {
  const Sample& first = samples_[base_index];
  const Sample& last = samples_.back();
  WindowStats w;
  w.span_seconds = last.wall_seconds - first.wall_seconds;

  w.shed_delta = delta_of(last.snap.counter(kShedCounter),
                          first.snap.counter(kShedCounter));
  uint64_t admitted = delta_of(last.snap.counter(kConnectionsCounter),
                               first.snap.counter(kConnectionsCounter));
  uint64_t arrivals = admitted + w.shed_delta;
  w.shed_rate =
      arrivals > 0 ? static_cast<double>(w.shed_delta) / arrivals : 0.0;

  uint64_t requests = prefix_delta(last.snap, first.snap, kRequestPrefix);
  w.requests_per_second =
      w.span_seconds > 0 ? requests / w.span_seconds : 0.0;

  // Utilization = busy worker-time over the window divided by the
  // capacity (span × worker count). Busy time is the sum of the
  // per-worker busy counters, which the workers bump in microseconds.
  int64_t workers = last.snap.gauge(kWorkersGauge);
  if (workers > 0 && w.span_seconds > 0) {
    uint64_t busy_micros = prefix_delta(last.snap, first.snap, kBusyPrefix);
    w.worker_utilization =
        std::min(1.0, static_cast<double>(busy_micros) /
                          (w.span_seconds * 1e6 * workers));
  }

  w.dispatch_depth_min = samples_[base_index].snap.gauge(kDispatchGauge);
  w.dispatch_depth_max = w.dispatch_depth_min;
  for (size_t i = base_index + 1; i < samples_.size(); ++i) {
    int64_t depth = samples_[i].snap.gauge(kDispatchGauge);
    w.dispatch_depth_min = std::min(w.dispatch_depth_min, depth);
    w.dispatch_depth_max = std::max(w.dispatch_depth_max, depth);
  }
  return w;
}

std::string FlightRecorder::history_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"now_unix_seconds\": " + json_double(unix_time_seconds());
  out += ",\n \"interval_seconds\": " + json_double(config_.interval_seconds);
  out += ",\n \"samples_retained\": " + std::to_string(samples_.size());
  out += ",\n \"windows\": {";
  if (samples_.size() >= 2) {
    const Sample& last = samples_.back();
    bool first_window = true;
    for (size_t wi = 0; wi < std::size(kWindowSeconds); ++wi) {
      size_t base =
          base_index_locked(last.wall_seconds - kWindowSeconds[wi]);
      if (base == samples_.size() - 1) base = samples_.size() - 2;
      const Sample& first = samples_[base];
      WindowStats w = window_stats_locked(base);

      if (!first_window) out += ",";
      first_window = false;
      out += "\n  \"";
      out += kWindowNames[wi];
      out += "\": {\"span_seconds\": " + json_double(w.span_seconds);

      out += ",\n   \"counters\": {";
      bool first_counter = true;
      for (const auto& [name, value] : last.snap.counters) {
        uint64_t delta = delta_of(value, first.snap.counter(name));
        if (!first_counter) out += ", ";
        first_counter = false;
        out += "\"" + json_escape(name) +
               "\": {\"delta\": " + std::to_string(delta) +
               ", \"per_second\": " +
               json_double(w.span_seconds > 0 ? delta / w.span_seconds
                                              : 0.0) +
               "}";
      }
      out += "}";

      out += ",\n   \"gauges\": {";
      bool first_gauge = true;
      for (const auto& [name, value] : last.snap.gauges) {
        int64_t low = value;
        int64_t high = value;
        for (size_t i = base; i < samples_.size(); ++i) {
          int64_t v = samples_[i].snap.gauge(name);
          low = std::min(low, v);
          high = std::max(high, v);
        }
        if (!first_gauge) out += ", ";
        first_gauge = false;
        out += "\"" + json_escape(name) +
               "\": {\"last\": " + std::to_string(value) +
               ", \"min\": " + std::to_string(low) +
               ", \"max\": " + std::to_string(high) + "}";
      }
      out += "}";

      out += ",\n   \"derived\": {\"shed_rate\": " + json_double(w.shed_rate);
      out += ", \"worker_utilization\": " + json_double(w.worker_utilization);
      out += ", \"requests_per_second\": " + json_double(w.requests_per_second);
      out += ", \"dispatch_depth_min\": " +
             std::to_string(w.dispatch_depth_min);
      out += ", \"dispatch_depth_max\": " +
             std::to_string(w.dispatch_depth_max);
      out += "}}";
    }
  }
  out += "\n }\n}\n";
  return out;
}

const char* FlightRecorder::verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "ok";
    case Verdict::kDegraded: return "degraded";
    case Verdict::kOverloaded: return "overloaded";
  }
  return "ok";
}

FlightRecorder::Health FlightRecorder::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Health h;
  h.uptime_seconds = process_uptime_seconds();
  if (samples_.empty()) return h;

  const Sample& last = samples_.back();
  h.dispatch_depth = last.snap.gauge(kDispatchGauge);
  h.in_flight = last.snap.gauge(kInFlightGauge);
  h.parked = last.snap.gauge(kParkedGauge);
  // One sample has no window to judge load over — report ok rather
  // than flapping a readiness probe while warming up.
  if (samples_.size() < 2) return h;

  size_t base =
      base_index_locked(last.wall_seconds - config_.health_window_seconds);
  if (base == samples_.size() - 1) base = samples_.size() - 2;
  WindowStats w = window_stats_locked(base);
  h.window_seconds = w.span_seconds;
  h.shed_rate = w.shed_rate;
  h.worker_utilization = w.worker_utilization;

  int64_t workers = last.snap.gauge(kWorkersGauge);
  bool overloaded = false;
  bool degraded = false;

  if (w.shed_delta > 0 && w.shed_rate >= config_.overloaded_shed_rate) {
    overloaded = true;
    h.reasons.push_back("shed rate " + format_fixed(w.shed_rate, 3) +
                        " at or above " +
                        format_fixed(config_.overloaded_shed_rate, 3) +
                        " over " + format_fixed(w.span_seconds, 1) + "s");
  } else if (w.shed_delta > 0) {
    degraded = true;
    h.reasons.push_back(std::to_string(w.shed_delta) +
                        " connection(s) shed in window");
  }

  if (w.dispatch_depth_min > 0 && workers > 0 &&
      h.dispatch_depth >= workers) {
    overloaded = true;
    h.reasons.push_back(
        "dispatch queue never drained (min depth " +
        std::to_string(w.dispatch_depth_min) + ", now " +
        std::to_string(h.dispatch_depth) + " vs " +
        std::to_string(workers) + " workers)");
  } else if (w.dispatch_depth_min > 0) {
    degraded = true;
    h.reasons.push_back("dispatch backlog sustained (min depth " +
                        std::to_string(w.dispatch_depth_min) + ")");
  }

  if (w.worker_utilization >= config_.degraded_utilization) {
    degraded = true;
    h.reasons.push_back("worker utilization " +
                        format_fixed(w.worker_utilization, 3) +
                        " at or above " +
                        format_fixed(config_.degraded_utilization, 3));
  }

  h.verdict = overloaded  ? Verdict::kOverloaded
              : degraded  ? Verdict::kDegraded
                          : Verdict::kOk;
  return h;
}

std::string FlightRecorder::health_json() const {
  Health h = health();
  std::string out = "{\"verdict\": \"";
  out += verdict_name(h.verdict);
  out += "\",\n \"reasons\": [";
  bool first = true;
  for (const std::string& reason : h.reasons) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(reason) + "\"";
  }
  out += "],\n \"window_seconds\": " + json_double(h.window_seconds);
  out += ",\n \"shed_rate\": " + json_double(h.shed_rate);
  out += ",\n \"worker_utilization\": " + json_double(h.worker_utilization);
  out += ",\n \"dispatch_depth\": " + std::to_string(h.dispatch_depth);
  out += ",\n \"in_flight\": " + std::to_string(h.in_flight);
  out += ",\n \"parked\": " + std::to_string(h.parked);
  out += ",\n \"uptime_seconds\": " + json_double(h.uptime_seconds);
  out += ",\n \"samples\": " + std::to_string(sample_count());
  out += "\n}\n";
  return out;
}

}  // namespace davpse::obs
