// Namespace-qualified XML names. DAV properties are identified by
// (namespace URI, local name) pairs — e.g. {DAV:}getcontentlength or
// {http://purl.pnl.gov/ecce}formula — so QName is the key type across
// the DAV server, client, and Ecce schema layers.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace davpse::xml {

struct QName {
  std::string ns;     // namespace URI; empty = no namespace
  std::string local;  // local part, never empty for a valid name

  QName() = default;
  QName(std::string ns_uri, std::string local_name)
      : ns(std::move(ns_uri)), local(std::move(local_name)) {}

  /// James Clark notation: "{DAV:}href" (or just "href" with no ns).
  std::string to_string() const {
    if (ns.empty()) return local;
    return "{" + ns + "}" + local;
  }

  bool empty() const { return local.empty(); }

  friend bool operator==(const QName& a, const QName& b) {
    return a.ns == b.ns && a.local == b.local;
  }
  friend auto operator<=>(const QName& a, const QName& b) {
    if (auto cmp = a.ns <=> b.ns; cmp != 0) return cmp;
    return a.local <=> b.local;
  }
};

/// The WebDAV namespace (RFC 2518 uses the literal URI "DAV:").
inline constexpr std::string_view kDavNamespace = "DAV:";

inline QName dav_name(std::string_view local) {
  return QName(std::string(kDavNamespace), std::string(local));
}

}  // namespace davpse::xml

template <>
struct std::hash<davpse::xml::QName> {
  size_t operator()(const davpse::xml::QName& name) const noexcept {
    size_t h1 = std::hash<std::string>{}(name.ns);
    size_t h2 = std::hash<std::string>{}(name.local);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
