#include "xml/dom.h"

#include "xml/writer.h"

namespace davpse::xml {

std::string_view Element::attribute(std::string_view local) const {
  for (const auto& attr : attributes_) {
    if (attr.name.ns.empty() && attr.name.local == local) return attr.value;
  }
  return {};
}

Element* Element::add_child(QName name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

const Element* Element::first_child(const QName& name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(const QName& name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::string_view Element::child_text(const QName& name) const {
  const Element* child = first_child(name);
  return child == nullptr ? std::string_view() : std::string_view(child->text());
}

namespace {

void write_element(const Element& element, XmlWriter* writer) {
  writer->start_element(element.name());
  for (const auto& attr : element.attributes()) {
    // Only no-namespace attributes are emitted (matches our writer).
    if (attr.name.ns.empty()) {
      writer->attribute(attr.name.local, attr.value);
    }
  }
  if (!element.text().empty()) writer->text(element.text());
  for (const auto& child : element.children()) {
    write_element(*child, writer);
  }
  writer->end_element();
}

class DomBuilder final : public SaxHandler {
 public:
  void on_start_element(const QName& name,
                        const std::vector<SaxAttribute>& attributes) override {
    Element* element;
    if (stack_.empty()) {
      root_ = std::make_unique<Element>(name);
      element = root_.get();
    } else {
      element = stack_.back()->add_child(name);
    }
    element->set_attributes(attributes);
    stack_.push_back(element);
  }

  void on_end_element(const QName&) override { stack_.pop_back(); }

  void on_characters(std::string_view text) override {
    if (!stack_.empty()) stack_.back()->append_text(text);
  }

  ElementPtr take_root() { return std::move(root_); }

 private:
  ElementPtr root_;
  std::vector<Element*> stack_;
};

}  // namespace

std::string Element::to_xml() const {
  XmlWriter writer;
  write_element(*this, &writer);
  return writer.take();
}

size_t Element::subtree_size() const {
  size_t count = 1;
  for (const auto& child : children_) count += child->subtree_size();
  return count;
}

Result<ElementPtr> parse_document(std::string_view xml) {
  DomBuilder builder;
  SaxParser parser;
  DAVPSE_RETURN_IF_ERROR(parser.parse(xml, &builder));
  return builder.take_root();
}

}  // namespace davpse::xml
