// Document Object Model: a fully materialized element tree. Built on
// the SAX tokenizer; deliberately allocates one node per element and
// copies all character data so that the DOM-vs-SAX ablation reproduces
// the overhead the paper measured with Xerces DOM.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/qname.h"
#include "xml/sax.h"

namespace davpse::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

class Element {
 public:
  explicit Element(QName name) : name_(std::move(name)) {}

  const QName& name() const { return name_; }

  const std::vector<SaxAttribute>& attributes() const { return attributes_; }
  void set_attributes(std::vector<SaxAttribute> attributes) {
    attributes_ = std::move(attributes);
  }
  /// Attribute lookup by no-namespace name; empty if absent.
  std::string_view attribute(std::string_view local) const;

  const std::vector<ElementPtr>& children() const { return children_; }
  Element* add_child(QName name);

  /// Concatenated direct text content (not recursive).
  const std::string& text() const { return text_; }
  void append_text(std::string_view text) { text_ += text; }

  /// First direct child with the given name; nullptr if absent.
  const Element* first_child(const QName& name) const;
  /// All direct children with the given name.
  std::vector<const Element*> children_named(const QName& name) const;
  /// Text of the first child with that name; empty if absent.
  std::string_view child_text(const QName& name) const;

  /// Serializes this element (and subtree) back to markup.
  std::string to_xml() const;

  /// Number of elements in this subtree, including this one.
  size_t subtree_size() const;

 private:
  QName name_;
  std::vector<SaxAttribute> attributes_;
  std::vector<ElementPtr> children_;
  std::string text_;
};

/// Parses a document and returns its root element.
Result<ElementPtr> parse_document(std::string_view xml);

}  // namespace davpse::xml
