#include "xml/escape.h"

namespace davpse::xml {
namespace {

std::string escape_impl(std::string_view raw, bool quote) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (quote) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string escape_text(std::string_view raw) {
  return escape_impl(raw, /*quote=*/false);
}

std::string escape_attribute(std::string_view raw) {
  return escape_impl(raw, /*quote=*/true);
}

std::string unescape_text(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '&') {
      out += escaped[i];
      continue;
    }
    if (escaped.compare(i, 5, "&amp;") == 0) {
      out += '&';
      i += 4;
    } else if (escaped.compare(i, 4, "&lt;") == 0) {
      out += '<';
      i += 3;
    } else if (escaped.compare(i, 4, "&gt;") == 0) {
      out += '>';
      i += 3;
    } else if (escaped.compare(i, 6, "&quot;") == 0) {
      out += '"';
      i += 5;
    } else if (escaped.compare(i, 6, "&apos;") == 0) {
      out += '\'';
      i += 5;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

bool is_xml_safe_text(std::string_view raw) {
  for (char c : raw) {
    auto byte = static_cast<unsigned char>(c);
    if (byte < 0x20 && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

}  // namespace davpse::xml
