// Streaming (SAX-style) XML parser with namespace resolution. The
// paper attributes most of Table 1's client-side cost to DOM parsing
// ("SAX parsers do not build an in-memory representation of the entire
// XML document... eliminating significant overhead") — so this module
// provides both: SaxParser emits events without allocating a tree, and
// DomParser (xml/dom.h) builds its tree on top of the same tokenizer.
// The DOM-vs-SAX bench quantifies exactly that predicted gap.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/qname.h"

namespace davpse::xml {

struct SaxAttribute {
  QName name;
  std::string value;
};

/// Receives parse events. Namespace declarations (xmlns / xmlns:p) are
/// consumed by the parser and not reported as attributes.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;
  virtual void on_start_element(const QName& name,
                                const std::vector<SaxAttribute>& attributes) {
    (void)name;
    (void)attributes;
  }
  virtual void on_end_element(const QName& name) { (void)name; }
  /// May be called multiple times per text node (entity boundaries,
  /// CDATA sections). Whitespace-only runs are reported too.
  virtual void on_characters(std::string_view text) { (void)text; }
};

class SaxParser {
 public:
  /// Parses a complete document. Enforces: single root element,
  /// balanced/matching tags, declared namespace prefixes, well-formed
  /// entities. Returns kMalformed with a byte offset on error.
  Status parse(std::string_view xml, SaxHandler* handler);
};

}  // namespace davpse::xml
