#include "xml/writer.h"

#include <cassert>

#include "xml/escape.h"

namespace davpse::xml {

void XmlWriter::declaration() {
  assert(out_.empty() && "declaration must come first");
  out_ += "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
}

void XmlWriter::prefer_prefix(std::string_view ns, std::string_view prefix) {
  preferred_.push_back({std::string(ns), std::string(prefix)});
}

std::string XmlWriter::prefix_for(const std::string& ns,
                                  std::string* declarations) {
  if (ns.empty()) return "";
  // Innermost binding wins.
  for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
    if (it->ns == ns) return it->prefix;
  }
  std::string prefix;
  for (const auto& pref : preferred_) {
    if (pref.ns == ns) {
      prefix = pref.prefix;
      break;
    }
  }
  if (prefix.empty()) {
    prefix = "ns" + std::to_string(++auto_prefix_counter_);
  }
  // Avoid shadowing a live prefix bound to a different namespace.
  for (const auto& binding : scope_) {
    if (binding.prefix == prefix && binding.ns != ns) {
      prefix = "ns" + std::to_string(++auto_prefix_counter_);
      break;
    }
  }
  scope_.push_back({ns, prefix});
  *declarations += " xmlns:" + prefix + "=\"" + escape_attribute(ns) + "\"";
  return prefix;
}

void XmlWriter::close_start_tag() {
  if (in_start_tag_) {
    out_ += ">";
    in_start_tag_ = false;
  }
}

void XmlWriter::start_element(const QName& name) {
  assert(!name.local.empty());
  close_start_tag();
  if (!open_.empty()) open_.back().has_children = true;
  size_t mark = scope_.size();
  std::string declarations;
  std::string prefix = prefix_for(name.ns, &declarations);
  std::string tag = prefix.empty() ? name.local : prefix + ":" + name.local;
  out_ += "<" + tag + declarations;
  in_start_tag_ = true;
  open_.push_back({std::move(tag), mark, false});
}

void XmlWriter::attribute(std::string_view name, std::string_view value) {
  assert(in_start_tag_ && "attribute() must follow start_element()");
  out_ += " ";
  out_ += name;
  out_ += "=\"";
  out_ += escape_attribute(value);
  out_ += "\"";
}

void XmlWriter::text(std::string_view content) {
  assert(!open_.empty());
  close_start_tag();
  open_.back().has_children = true;
  out_ += escape_text(content);
}

void XmlWriter::raw(std::string_view xml) {
  assert(!open_.empty());
  close_start_tag();
  open_.back().has_children = true;
  out_ += xml;
}

void XmlWriter::end_element() {
  assert(!open_.empty());
  OpenElement element = std::move(open_.back());
  open_.pop_back();
  if (in_start_tag_ && !element.has_children) {
    out_ += "/>";
    in_start_tag_ = false;
  } else {
    close_start_tag();
    out_ += "</" + element.tag + ">";
  }
  scope_.resize(element.scope_mark);
}

void XmlWriter::text_element(const QName& name, std::string_view content) {
  start_element(name);
  if (!content.empty()) text(content);
  end_element();
}

void XmlWriter::empty_element(const QName& name) {
  start_element(name);
  end_element();
}

void XmlWriter::drain_pending(std::string* sink) {
  // Attributes append to out_ in place, so draining mid-start-tag
  // would tear the tag across two drains; hold those bytes back.
  if (in_start_tag_) return;
  sink->append(out_);
  out_.clear();
}

std::string XmlWriter::take() {
  assert(open_.empty() && "unclosed elements at take()");
  return std::move(out_);
}

}  // namespace davpse::xml
