#include "xml/sax.h"

#include <cassert>

#include "util/strings.h"

namespace davpse::xml {
namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Recursive-descent scanner over the document buffer. Namespace
/// bindings live in a scoped vector exactly as in XmlWriter.
class Scanner {
 public:
  Scanner(std::string_view xml, SaxHandler* handler)
      : xml_(xml), handler_(handler) {}

  Status run() {
    skip_prolog();
    if (at_end()) return fail("document has no root element");
    DAVPSE_RETURN_IF_ERROR(parse_element());
    skip_misc();
    if (!at_end()) return fail("content after root element");
    return Status::ok();
  }

 private:
  bool at_end() const { return pos_ >= xml_.size(); }
  char peek() const { return xml_[pos_]; }
  bool looking_at(std::string_view token) const {
    return xml_.substr(pos_, token.size()) == token;
  }

  Status fail(std::string message) const {
    return error(ErrorCode::kMalformed,
                 "XML error at byte " + std::to_string(pos_) + ": " +
                     std::move(message));
  }

  void skip_spaces() {
    while (!at_end() && is_space(peek())) ++pos_;
  }

  /// XML declaration, comments, PIs, DOCTYPE before the root.
  void skip_prolog() {
    for (;;) {
      skip_spaces();
      if (looking_at("<?")) {
        auto end = xml_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? xml_.size() : end + 2;
      } else if (looking_at("<!--")) {
        auto end = xml_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? xml_.size() : end + 3;
      } else if (looking_at("<!DOCTYPE")) {
        // Skip to matching '>' (internal subsets with '[' ... ']').
        int bracket_depth = 0;
        while (!at_end()) {
          char c = xml_[pos_++];
          if (c == '[') ++bracket_depth;
          if (c == ']') --bracket_depth;
          if (c == '>' && bracket_depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  /// Comments/PIs/whitespace after the root.
  void skip_misc() { skip_prolog(); }

  Result<std::string> read_name() {
    if (at_end() || !is_name_start(peek())) {
      return fail("expected a name");
    }
    size_t start = pos_;
    while (!at_end() && is_name_char(peek())) ++pos_;
    // Allow one ':' separating prefix and local part.
    if (!at_end() && peek() == ':') {
      ++pos_;
      if (at_end() || !is_name_start(peek())) {
        return fail("expected local name after ':'");
      }
      while (!at_end() && is_name_char(peek())) ++pos_;
    }
    return std::string(xml_.substr(start, pos_ - start));
  }

  /// Decodes &amp; &lt; &gt; &quot; &apos; &#ddd; &#xhh; into `out`.
  Status decode_entity(std::string* out) {
    assert(peek() == '&');
    size_t semi = xml_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      return fail("unterminated entity reference");
    }
    std::string_view entity = xml_.substr(pos_ + 1, semi - pos_ - 1);
    pos_ = semi + 1;
    if (entity == "amp") {
      *out += '&';
    } else if (entity == "lt") {
      *out += '<';
    } else if (entity == "gt") {
      *out += '>';
    } else if (entity == "quot") {
      *out += '"';
    } else if (entity == "apos") {
      *out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t code = 0;
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      std::string_view digits = entity.substr(hex ? 2 : 1);
      if (digits.empty()) return fail("empty character reference");
      for (char c : digits) {
        int v;
        if (c >= '0' && c <= '9') {
          v = c - '0';
        } else if (hex && c >= 'a' && c <= 'f') {
          v = c - 'a' + 10;
        } else if (hex && c >= 'A' && c <= 'F') {
          v = c - 'A' + 10;
        } else {
          return fail("bad character reference");
        }
        code = code * (hex ? 16 : 10) + static_cast<uint32_t>(v);
        if (code > 0x10FFFF) return fail("character reference out of range");
      }
      append_utf8(code, out);
    } else {
      return fail("unknown entity '&" + std::string(entity) + ";'");
    }
    return Status::ok();
  }

  static void append_utf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<std::string> read_attribute_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return fail("expected quoted attribute value");
    }
    char quote = peek();
    ++pos_;
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '&') {
        DAVPSE_RETURN_IF_ERROR(decode_entity(&value));
      } else if (peek() == '<') {
        return fail("'<' in attribute value");
      } else {
        value += peek();
        ++pos_;
      }
    }
    if (at_end()) return fail("unterminated attribute value");
    ++pos_;  // closing quote
    return value;
  }

  Result<std::string> resolve_prefix(std::string_view prefix,
                                     bool is_attribute) {
    if (prefix.empty()) {
      if (is_attribute) return std::string();  // no default ns for attrs
      for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
        if (it->prefix.empty()) return it->ns;
      }
      return std::string();
    }
    if (prefix == "xml") {
      return std::string("http://www.w3.org/XML/1998/namespace");
    }
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->prefix == prefix) return it->ns;
    }
    return fail("undeclared namespace prefix '" + std::string(prefix) + "'");
  }

  static std::pair<std::string_view, std::string_view> split_prefixed(
      std::string_view name) {
    auto colon = name.find(':');
    if (colon == std::string_view::npos) return {"", name};
    return {name.substr(0, colon), name.substr(colon + 1)};
  }

  Status parse_element() {
    assert(peek() == '<');
    ++pos_;
    auto raw_name = read_name();
    if (!raw_name.ok()) return raw_name.status();

    size_t scope_mark = bindings_.size();
    struct RawAttr {
      std::string name;
      std::string value;
    };
    std::vector<RawAttr> raw_attrs;

    bool self_closing = false;
    for (;;) {
      skip_spaces();
      if (at_end()) return fail("unterminated start tag");
      if (peek() == '>') {
        ++pos_;
        break;
      }
      if (looking_at("/>")) {
        pos_ += 2;
        self_closing = true;
        break;
      }
      auto attr_name = read_name();
      if (!attr_name.ok()) return attr_name.status();
      skip_spaces();
      if (at_end() || peek() != '=') return fail("expected '=' after attribute");
      ++pos_;
      skip_spaces();
      auto attr_value = read_attribute_value();
      if (!attr_value.ok()) return attr_value.status();

      const std::string& aname = attr_name.value();
      if (aname == "xmlns") {
        bindings_.push_back({"", std::move(attr_value.value())});
      } else if (starts_with(aname, "xmlns:")) {
        bindings_.push_back(
            {aname.substr(6), std::move(attr_value.value())});
      } else {
        raw_attrs.push_back({aname, std::move(attr_value.value())});
      }
    }

    auto [prefix, local] = split_prefixed(raw_name.value());
    auto ns = resolve_prefix(prefix, /*is_attribute=*/false);
    if (!ns.ok()) return ns.status();
    QName name(std::move(ns.value()), std::string(local));

    std::vector<SaxAttribute> attributes;
    attributes.reserve(raw_attrs.size());
    for (auto& raw : raw_attrs) {
      auto [aprefix, alocal] = split_prefixed(raw.name);
      auto ans = resolve_prefix(aprefix, /*is_attribute=*/true);
      if (!ans.ok()) return ans.status();
      attributes.push_back(
          {QName(std::move(ans.value()), std::string(alocal)),
           std::move(raw.value)});
    }

    handler_->on_start_element(name, attributes);
    if (!self_closing) {
      DAVPSE_RETURN_IF_ERROR(parse_content(name));
    }
    handler_->on_end_element(name);
    bindings_.resize(scope_mark);
    return Status::ok();
  }

  Status parse_content(const QName& open_name) {
    std::string text;
    auto flush_text = [&] {
      if (!text.empty()) {
        handler_->on_characters(text);
        text.clear();
      }
    };
    for (;;) {
      if (at_end()) return fail("unterminated element " + open_name.local);
      char c = peek();
      if (c == '<') {
        if (looking_at("</")) {
          flush_text();
          pos_ += 2;
          auto raw_name = read_name();
          if (!raw_name.ok()) return raw_name.status();
          skip_spaces();
          if (at_end() || peek() != '>') return fail("malformed end tag");
          ++pos_;
          auto [prefix, local] = split_prefixed(raw_name.value());
          auto ns = resolve_prefix(prefix, /*is_attribute=*/false);
          if (!ns.ok()) return ns.status();
          if (!(open_name.local == local && open_name.ns == ns.value())) {
            return fail("mismatched end tag </" + raw_name.value() +
                        "> for <" + open_name.to_string() + ">");
          }
          return Status::ok();
        }
        if (looking_at("<!--")) {
          flush_text();
          auto end = xml_.find("-->", pos_);
          if (end == std::string_view::npos) return fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (looking_at("<![CDATA[")) {
          auto end = xml_.find("]]>", pos_);
          if (end == std::string_view::npos) return fail("unterminated CDATA");
          text.append(xml_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        if (looking_at("<?")) {
          flush_text();
          auto end = xml_.find("?>", pos_);
          if (end == std::string_view::npos) return fail("unterminated PI");
          pos_ = end + 2;
          continue;
        }
        flush_text();
        DAVPSE_RETURN_IF_ERROR(parse_element());
        continue;
      }
      if (c == '&') {
        DAVPSE_RETURN_IF_ERROR(decode_entity(&text));
        continue;
      }
      // Plain character run up to the next markup/entity.
      size_t stop = xml_.find_first_of("<&", pos_);
      if (stop == std::string_view::npos) stop = xml_.size();
      text.append(xml_.substr(pos_, stop - pos_));
      pos_ = stop;
    }
  }

  struct Binding {
    std::string prefix;
    std::string ns;
  };

  std::string_view xml_;
  SaxHandler* handler_;
  size_t pos_ = 0;
  std::vector<Binding> bindings_;
};

}  // namespace

Status SaxParser::parse(std::string_view xml, SaxHandler* handler) {
  assert(handler != nullptr);
  return Scanner(xml, handler).run();
}

}  // namespace davpse::xml
