// Streaming, namespace-aware XML writer. Used to build DAV request and
// multistatus bodies and to serialize Ecce documents. Namespace
// prefixes are managed automatically: a namespace is declared on the
// element where it first appears and stays in scope below it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/qname.h"

namespace davpse::xml {

class XmlWriter {
 public:
  XmlWriter() = default;

  /// Emits the '<?xml version="1.0" encoding="utf-8"?>' declaration;
  /// call before the first element if wanted.
  void declaration();

  /// Suggests a prefix for a namespace (e.g. "D" for DAV:); applies to
  /// declarations emitted after this call. Purely cosmetic.
  void prefer_prefix(std::string_view ns, std::string_view prefix);

  void start_element(const QName& name);

  /// Attribute on the most recently started element; must be called
  /// before any child content. No-namespace attributes only (DAV needs
  /// nothing more).
  void attribute(std::string_view name, std::string_view value);

  /// Escaped character content.
  void text(std::string_view content);

  /// Raw bytes, caller guarantees well-formedness (used to embed
  /// already-serialized XML property values).
  void raw(std::string_view xml);

  void end_element();

  /// Convenience: <name>text</name>.
  void text_element(const QName& name, std::string_view content);

  /// Convenience: <name/>.
  void empty_element(const QName& name);

  /// Finishes and returns the document. All elements must be closed.
  std::string take();

  /// Streaming drain: moves the bytes serialized so far into `*sink`
  /// (appending) and clears the internal buffer, WITHOUT requiring the
  /// document to be complete — open elements stay open and emission
  /// continues afterwards. Bytes inside an unclosed start tag are held
  /// back so a drained prefix is always well-formed-so-far; callers
  /// pumping a multistatus body drain after each closed response
  /// element, keeping peak memory at one element rather than the whole
  /// document.
  void drain_pending(std::string* sink);

  /// Bytes currently drainable (serialized and outside any start tag).
  size_t pending_bytes() const { return in_start_tag_ ? 0 : out_.size(); }

  size_t depth() const { return open_.size(); }

 private:
  struct OpenElement {
    std::string tag;          // prefixed tag used in the start tag
    size_t scope_mark;        // prefix-scope size to restore on close
    bool has_children = false;
  };

  struct PrefixBinding {
    std::string ns;
    std::string prefix;
  };

  /// Returns the prefix for `ns`, declaring it on the current element
  /// if needed. `declarations` receives any xmlns attributes to emit.
  std::string prefix_for(const std::string& ns, std::string* declarations);
  void close_start_tag();

  std::string out_;
  std::vector<OpenElement> open_;
  std::vector<PrefixBinding> scope_;
  std::vector<PrefixBinding> preferred_;
  int auto_prefix_counter_ = 0;
  bool in_start_tag_ = false;
};

}  // namespace davpse::xml
