// XML character escaping for element content and attribute values.
#pragma once

#include <string>
#include <string_view>

namespace davpse::xml {

/// Escapes '&', '<', '>' for element text content.
std::string escape_text(std::string_view raw);

/// Escapes '&', '<', '>', '"' for double-quoted attribute values.
std::string escape_attribute(std::string_view raw);

/// Decodes the five predefined entities (&amp; &lt; &gt; &quot;
/// &apos;) in serialized character data. Unknown entities are left
/// untouched. Inverse of escape_text for text-only content.
std::string unescape_text(std::string_view escaped);

/// True if `raw` survives an XML text round trip unchanged: no control
/// bytes below 0x20 other than tab/LF/CR. Binary payloads that fail
/// this must be base64-wrapped before being stored as XML property
/// values (the DAV property layer does this automatically).
bool is_xml_safe_text(std::string_view raw);

}  // namespace davpse::xml
