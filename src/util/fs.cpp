#include "util/fs.h"

#include <atomic>
#include <fstream>
#include <random>
#include <system_error>

namespace davpse {

namespace fs = std::filesystem;

Status read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return error(ErrorCode::kNotFound, "cannot open " + path.string());
  }
  in.seekg(0, std::ios::end);
  auto size = in.tellg();
  if (size < 0) {
    return error(ErrorCode::kInternal, "cannot stat " + path.string());
  }
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(out->data(), size);
  if (!in) {
    return error(ErrorCode::kInternal, "short read on " + path.string());
  }
  return Status::ok();
}

Status write_file_atomic(const fs::path& path, std::string_view data) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return error(ErrorCode::kInternal, "cannot create " + tmp.string());
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      return error(ErrorCode::kInternal, "short write on " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return error(ErrorCode::kInternal, "rename failed for " + path.string());
  }
  return Status::ok();
}

std::uint64_t disk_usage(const fs::path& root) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    return static_cast<std::uint64_t>(fs::file_size(root, ec));
  }
  std::uint64_t total = 0;
  if (!fs::is_directory(root, ec)) return 0;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      total += static_cast<std::uint64_t>(it->file_size(ec));
    }
  }
  return total;
}

Status copy_tree(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  fs::copy(from, to,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing,
           ec);
  if (ec) {
    return error(ErrorCode::kInternal,
                 "copy " + from.string() + " -> " + to.string() + ": " +
                     ec.message());
  }
  return Status::ok();
}

TempDir::TempDir(std::string_view prefix) {
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto candidate =
        fs::temp_directory_path() /
        (std::string(prefix) + "-" + std::to_string(rd() % 1000000) + "-" +
         std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) {
      path_ = candidate;
      return;
    }
  }
  throw std::runtime_error("TempDir: could not create a unique directory");
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best effort; never throws in a dtor
  }
}

}  // namespace davpse
