#include "util/status.h"

namespace davpse {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kMalformed: return "MALFORMED";
    case ErrorCode::kConflict: return "CONFLICT";
    case ErrorCode::kLocked: return "LOCKED";
    case ErrorCode::kTooLarge: return "TOO_LARGE";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace davpse
