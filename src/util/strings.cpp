#include "util/strings.h"

#include <array>
#include <cstdint>
#include <cstdio>

namespace davpse {
namespace {

bool is_ascii_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool is_unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string_view trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && is_ascii_space(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && is_ascii_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_skip_empty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : split(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string percent_encode_path(std::string_view path) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (is_unreserved(c) || c == '/') {
      out += c;
    } else {
      auto byte = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[byte >> 4];
      out += kHex[byte & 0xF];
    }
  }
  return out;
}

bool percent_decode(std::string_view in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      *out += in[i];
      continue;
    }
    if (i + 2 >= in.size()) return false;
    int hi = hex_value(in[i + 1]);
    int lo = hex_value(in[i + 2]);
    if (hi < 0 || lo < 0) return false;
    *out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return true;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  return buf;
}

}  // namespace davpse
