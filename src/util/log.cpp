#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "util/clock.h"

namespace davpse {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;
LogSink g_sink;  // guarded by g_emit_mutex

/// "2001-08-07 14:03:21.042" (UTC) from epoch seconds.
void format_timestamp(double unix_seconds, char* buf, size_t size) {
  std::time_t whole = static_cast<std::time_t>(unix_seconds);
  int millis = static_cast<int>(
      (unix_seconds - static_cast<double>(whole)) * 1000.0);
  if (millis < 0) millis = 0;
  std::tm tm_utc{};
  gmtime_r(&whole, &tm_utc);
  size_t n = std::strftime(buf, size, "%Y-%m-%d %H:%M:%S", &tm_utc);
  std::snprintf(buf + n, size - n, ".%03d", millis);
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

uint64_t log_thread_id() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  // The macro already filters, but direct callers go through the same
  // gate — there is exactly one emission path.
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  double now = unix_time_seconds();
  uint64_t tid = log_thread_id();
  char stamp[40];
  format_timestamp(now, stamp, sizeof stamp);
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] [tid %llu] [%s] %s\n", stamp,
               static_cast<unsigned long long>(tid), log_level_name(level),
               message.c_str());
  if (g_sink) g_sink(level, now, tid, message);
}

}  // namespace davpse
