#include "util/policy.h"

#include <algorithm>

#include "util/clock.h"

namespace davpse {

Deadline Deadline::after(double seconds) {
  Deadline deadline;
  deadline.at_ = wall_time_seconds() + seconds;
  return deadline;
}

double Deadline::remaining_seconds() const {
  if (is_never()) return std::numeric_limits<double>::infinity();
  return at_ - wall_time_seconds();
}

double RetryPolicy::backoff_before_attempt(int completed_attempts,
                                           double unit) const {
  if (initial_backoff_seconds <= 0) return 0;
  double base = initial_backoff_seconds;
  for (int i = 1; i < completed_attempts; ++i) {
    base *= backoff_multiplier;
    if (base >= max_backoff_seconds) break;
  }
  base = std::min(base, max_backoff_seconds);
  double j = std::clamp(jitter, 0.0, 1.0);
  return base * (1.0 - j * std::clamp(unit, 0.0, 1.0));
}

Deadline RetryPolicy::start_deadline() const {
  return overall_deadline_seconds > 0 ? Deadline::after(overall_deadline_seconds)
                                      : Deadline::never();
}

}  // namespace davpse
