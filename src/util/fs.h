// Filesystem helpers shared by the DAV repository, the DBM engines and
// the OODB segment files: whole-file IO, recursive disk accounting, and
// RAII temporary directories for tests and benches.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "util/status.h"

namespace davpse {

/// Reads the whole file into `out`. kNotFound if missing.
Status read_file(const std::filesystem::path& path, std::string* out);

/// Atomically replaces `path` with `data` (write temp + rename) so a
/// crashed writer never leaves a half-written document behind.
Status write_file_atomic(const std::filesystem::path& path,
                         std::string_view data);

/// Sum of file sizes under `root` (the §3.2.4 disk-usage metric). For
/// DBM files this is the *allocated* size including preallocated,
/// unused bucket space — exactly what the paper measured.
std::uint64_t disk_usage(const std::filesystem::path& root);

/// Recursively copies `from` to `to` (used by DAV COPY on collections).
Status copy_tree(const std::filesystem::path& from,
                 const std::filesystem::path& to);

/// Creates a unique directory under the system temp dir and removes it
/// (recursively) on destruction.
class TempDir {
 public:
  explicit TempDir(std::string_view prefix = "davpse");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace davpse
