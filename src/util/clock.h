// Timing for the benchmark harness. Table 1 of the paper reports both
// *elapsed* and *CPU* time to separate client-side processing from
// server/network cost; StopWatch mirrors that split.
#pragma once

#include <cstdint>

namespace davpse {

/// Monotonic wall-clock time in seconds.
double wall_time_seconds();

/// Unix epoch time in seconds (sub-second precision). Monotonic time
/// is for measuring; this is for stamping records that outlive the
/// process (access-log lines, log messages).
double unix_time_seconds();

/// CPU time consumed by the calling *thread*, in seconds. Used to
/// attribute client-side processing cost the way Table 1 does.
double thread_cpu_seconds();

/// CPU time consumed by the whole process (all threads), in seconds.
double process_cpu_seconds();

/// Measures an interval in both wall and calling-thread CPU time.
class StopWatch {
 public:
  StopWatch() { restart(); }

  void restart() {
    wall_start_ = wall_time_seconds();
    cpu_start_ = thread_cpu_seconds();
  }

  double elapsed_wall() const { return wall_time_seconds() - wall_start_; }
  double elapsed_cpu() const { return thread_cpu_seconds() - cpu_start_; }

 private:
  double wall_start_ = 0;
  double cpu_start_ = 0;
};

}  // namespace davpse
