// Tiny leveled logger. All emission funnels through log_message(): it
// applies the level filter, formats one line with a wall-clock
// timestamp and a small per-thread id, writes it to stderr under a
// mutex, and forwards the raw message to an optional sink (the async
// event log installs one to capture log traffic as structured
// records). Defaults to warnings-and-up so benches stay quiet unless
// asked.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace davpse {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "DEBUG" / "INFO" / "WARN" / "ERROR".
const char* log_level_name(LogLevel level);

/// Small dense id for the calling thread (1, 2, ...) — readable in log
/// lines where the OS thread id would be noise.
uint64_t log_thread_id();

/// Receives every message that passed the level filter, alongside the
/// stderr line: (level, unix seconds, thread id, raw message).
using LogSink = std::function<void(LogLevel, double, uint64_t,
                                   const std::string&)>;

/// Installs (or, with an empty function, removes) the process-wide
/// sink. The sink is called under the emission mutex — keep it quick
/// and never log from inside it.
void set_log_sink(LogSink sink);

/// The single emission path: level filter, timestamp + thread id
/// formatting, stderr line, sink forwarding. Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace davpse

#define DAVPSE_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::davpse::log_level())) \
    ;                                                       \
  else                                                      \
    ::davpse::internal::LogLine(level)

#define DAVPSE_LOG_DEBUG DAVPSE_LOG(::davpse::LogLevel::kDebug)
#define DAVPSE_LOG_INFO DAVPSE_LOG(::davpse::LogLevel::kInfo)
#define DAVPSE_LOG_WARN DAVPSE_LOG(::davpse::LogLevel::kWarn)
#define DAVPSE_LOG_ERROR DAVPSE_LOG(::davpse::LogLevel::kError)
