// Tiny leveled logger. Thread-safe (single mutex around emission);
// defaults to warnings-and-up so benches stay quiet unless asked.
#pragma once

#include <sstream>
#include <string>

namespace davpse {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[WARN] message") to stderr under a mutex.
void log_message(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace davpse

#define DAVPSE_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::davpse::log_level())) \
    ;                                                       \
  else                                                      \
    ::davpse::internal::LogLine(level)

#define DAVPSE_LOG_DEBUG DAVPSE_LOG(::davpse::LogLevel::kDebug)
#define DAVPSE_LOG_INFO DAVPSE_LOG(::davpse::LogLevel::kInfo)
#define DAVPSE_LOG_WARN DAVPSE_LOG(::davpse::LogLevel::kWarn)
#define DAVPSE_LOG_ERROR DAVPSE_LOG(::davpse::LogLevel::kError)
