#include "util/base64.h"

#include <array>
#include <cstdint>

namespace davpse {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<int8_t, 256> build_reverse() {
  std::array<int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return table;
}

constexpr std::array<int8_t, 256> kReverse = build_reverse();

}  // namespace

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += kAlphabet[n & 63];
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t n = static_cast<unsigned char>(data[i]) << 16;
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

bool base64_decode(std::string_view encoded, std::string* out) {
  out->clear();
  if (encoded.size() % 4 != 0) return false;
  out->reserve(encoded.size() / 4 * 3);
  for (size_t i = 0; i < encoded.size(); i += 4) {
    int pad = 0;
    uint32_t n = 0;
    for (size_t j = 0; j < 4; ++j) {
      char c = encoded[i + j];
      if (c == '=') {
        // Padding may only appear in the final two positions of the
        // final quantum.
        if (i + 4 != encoded.size() || j < 2) return false;
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) return false;  // data after '='
      int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) return false;
      n = (n << 6) | static_cast<uint32_t>(v);
    }
    *out += static_cast<char>((n >> 16) & 0xFF);
    if (pad < 2) *out += static_cast<char>((n >> 8) & 0xFF);
    if (pad < 1) *out += static_cast<char>(n & 0xFF);
  }
  return true;
}

}  // namespace davpse
