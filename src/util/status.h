// Lightweight Status / Result<T> error propagation for recoverable,
// expected failures (protocol errors, missing resources, malformed
// input). Programming errors (precondition violations) use assertions
// and exceptions instead; see C++ Core Guidelines E.2/E.14.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace davpse {

/// Coarse error taxonomy shared by every layer in the stack. HTTP and
/// DAV status codes map onto these on the client side; substrates (dbm,
/// oodb, net) use them directly.
enum class ErrorCode {
  kOk = 0,
  kNotFound,        // resource / key / endpoint does not exist
  kAlreadyExists,   // create of something that exists
  kInvalidArgument, // malformed input at an API boundary
  kMalformed,       // malformed wire data (XML, HTTP framing, ...)
  kConflict,        // DAV 409: missing intermediate collection, etc.
  kLocked,          // DAV 423
  kTooLarge,        // exceeds configured/engine limit (413)
  kPermissionDenied,// auth failure (401/403)
  kUnsupported,     // method/feature not implemented
  kUnavailable,     // peer closed / endpoint down / retryable
  kTimeout,         // blocking operation exceeded its deadline
  kInternal,        // invariant broke on the other side (500)
};

/// Human-readable code name, e.g. "NOT_FOUND".
std::string_view error_code_name(ErrorCode code);

/// Transient-failure classification shared by every retry loop in the
/// stack: kUnavailable (peer closed, endpoint down, connection reset)
/// and kTimeout (deadline elapsed; the work may or may not have
/// happened) are worth another attempt. Everything else — protocol
/// errors, missing resources, auth failures — will fail the same way
/// again, so retrying only adds load.
constexpr bool is_retryable(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
}

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  /// See is_retryable(ErrorCode): true for transient transport-level
  /// failures another attempt might not hit.
  bool is_retryable() const { return davpse::is_retryable(code_); }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NOT_FOUND: no such resource /a/b" or "OK".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// A value-or-Status. `value()` asserts success; callers test `ok()`
/// (or `status()`) first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result from Status requires an error");
  }

  bool ok() const { return status_.is_ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace davpse

/// Propagate an error Status from an expression yielding Status.
#define DAVPSE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::davpse::Status davpse_status__ = (expr);        \
    if (!davpse_status__.is_ok()) return davpse_status__; \
  } while (0)

#define DAVPSE_CONCAT_INNER_(a, b) a##b
#define DAVPSE_CONCAT_(a, b) DAVPSE_CONCAT_INNER_(a, b)

/// Evaluate an expression yielding Result<T>; on error return its
/// Status, otherwise move the value into `lhs`. `lhs` may declare a new
/// variable or assign an existing one:
///   DAVPSE_ASSIGN_OR_RETURN(auto body, client.get(path));
///   DAVPSE_ASSIGN_OR_RETURN(existing, storage->fetch(key));
#define DAVPSE_ASSIGN_OR_RETURN(lhs, expr) \
  DAVPSE_ASSIGN_OR_RETURN_IMPL_(           \
      DAVPSE_CONCAT_(davpse_result__, __LINE__), lhs, expr)

#define DAVPSE_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                  \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()
