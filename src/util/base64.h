// Base64 (RFC 4648) — needed for HTTP Basic authentication.
#pragma once

#include <string>
#include <string_view>

namespace davpse {

std::string base64_encode(std::string_view data);

/// Strict decode: returns false on bad characters or bad padding.
bool base64_decode(std::string_view encoded, std::string* out);

}  // namespace davpse
