#include "util/uri.h"

#include "util/strings.h"

namespace davpse {

std::string Uri::encoded_path() const { return percent_encode_path(path); }

std::string Uri::to_string() const {
  if (scheme.empty()) return encoded_path();
  std::string out = scheme + "://" + host;
  if (port != 0) out += ":" + std::to_string(port);
  out += encoded_path();
  return out;
}

Result<Uri> parse_uri(std::string_view raw) {
  if (raw.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty URI");
  }
  Uri uri;
  std::string_view rest = raw;
  auto scheme_end = rest.find("://");
  if (scheme_end != std::string_view::npos) {
    uri.scheme = ascii_lower(rest.substr(0, scheme_end));
    rest.remove_prefix(scheme_end + 3);
    auto path_begin = rest.find('/');
    std::string_view authority =
        path_begin == std::string_view::npos ? rest : rest.substr(0, path_begin);
    rest = path_begin == std::string_view::npos ? std::string_view("/")
                                                : rest.substr(path_begin);
    auto colon = authority.rfind(':');
    if (colon != std::string_view::npos) {
      uri.host = std::string(authority.substr(0, colon));
      auto port_str = authority.substr(colon + 1);
      int port = 0;
      for (char c : port_str) {
        if (c < '0' || c > '9') {
          return Status(ErrorCode::kInvalidArgument, "bad port in URI");
        }
        port = port * 10 + (c - '0');
        if (port > 65535) {
          return Status(ErrorCode::kInvalidArgument, "port out of range");
        }
      }
      uri.port = port;
    } else {
      uri.host = std::string(authority);
    }
    if (uri.host.empty()) {
      return Status(ErrorCode::kInvalidArgument, "empty host in URI");
    }
  }
  if (rest.empty() || rest[0] != '/') {
    return Status(ErrorCode::kInvalidArgument,
                  "URI path must start with '/': " + std::string(raw));
  }
  // Strip query/fragment; DAV resources are identified by path alone.
  auto cut = rest.find_first_of("?#");
  if (cut != std::string_view::npos) rest = rest.substr(0, cut);
  std::string decoded;
  if (!percent_decode(rest, &decoded)) {
    return Status(ErrorCode::kInvalidArgument,
                  "malformed percent escape in URI path");
  }
  uri.path = std::move(decoded);
  return uri;
}

Result<std::string> normalize_path(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(ErrorCode::kInvalidArgument,
                  "path must be absolute: " + std::string(path));
  }
  std::vector<std::string> stack;
  for (auto& seg : split_skip_empty(path, '/')) {
    if (seg == ".") continue;
    if (seg == "..") {
      if (stack.empty()) {
        return Status(ErrorCode::kInvalidArgument,
                      "path escapes root: " + std::string(path));
      }
      stack.pop_back();
      continue;
    }
    stack.push_back(std::move(seg));
  }
  if (stack.empty()) return std::string("/");
  return "/" + join(stack, "/");
}

std::vector<std::string> path_segments(std::string_view normalized) {
  return split_skip_empty(normalized, '/');
}

std::string parent_path(std::string_view normalized) {
  if (normalized == "/") return "/";
  auto slash = normalized.rfind('/');
  if (slash == 0) return "/";
  return std::string(normalized.substr(0, slash));
}

std::string basename_of(std::string_view normalized) {
  if (normalized == "/") return "";
  auto slash = normalized.rfind('/');
  return std::string(normalized.substr(slash + 1));
}

std::string join_path(std::string_view parent, std::string_view child) {
  std::string out(parent);
  if (out.empty() || out.back() != '/') out += '/';
  out += child;
  return out;
}

bool path_is_within(std::string_view descendant, std::string_view ancestor) {
  if (ancestor == "/") return true;
  if (!starts_with(descendant, ancestor)) return false;
  return descendant.size() == ancestor.size() ||
         descendant[ancestor.size()] == '/';
}

}  // namespace davpse
