// Deterministic pseudo-random generation for workloads. Benches and
// property tests must be reproducible run-to-run, so everything funnels
// through an explicitly-seeded engine — never std::random_device at use
// sites.
#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace davpse {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  bool coin(double p_true = 0.5) { return uniform_real(0, 1) < p_true; }

  /// Printable ASCII payload of exactly `size` bytes — the 1 KB metadata
  /// values of Table 1 and document bodies are generated this way.
  std::string ascii_blob(size_t size) {
    static constexpr char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";
    std::string out;
    out.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      out += kChars[uniform(0, sizeof(kChars) - 2)];
    }
    return out;
  }

  /// Arbitrary bytes (may contain NUL) for binary round-trip tests.
  std::string binary_blob(size_t size) {
    std::string out;
    out.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      out += static_cast<char>(uniform(0, 255));
    }
    return out;
  }

  /// Lowercase identifier of length in [min_len, max_len].
  std::string identifier(size_t min_len, size_t max_len) {
    size_t len = uniform(min_len, max_len);
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out += static_cast<char>('a' + uniform(0, 25));
    }
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace davpse
