// Small string utilities used across the protocol stack: trimming,
// splitting, ASCII case handling (HTTP headers are case-insensitive),
// and percent-encoding (URIs).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace davpse {

/// Removes leading/trailing ASCII whitespace (space, \t, \r, \n).
std::string_view trim(std::string_view s);

/// Splits on `sep`, keeping empty fields. split("a,,b", ',') -> {a,"",b}.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on `sep`, dropping empty fields (useful for path segments).
std::vector<std::string> split_skip_empty(std::string_view s, char sep);

/// ASCII-lowercases a copy (HTTP header names, method tokens).
std::string ascii_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Joins parts with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Percent-encodes everything outside RFC 3986 "unreserved" plus '/'.
/// Suitable for encoding a whole URI path in one call.
std::string percent_encode_path(std::string_view path);

/// Percent-decodes; returns false on malformed escapes ("%zz", "%4").
bool percent_decode(std::string_view in, std::string* out);

/// Formats like "12.3 MB" / "512 B" for reports.
std::string format_bytes(std::uint64_t bytes);

/// Formats seconds with millisecond precision, e.g. "3.482 s".
std::string format_seconds(double seconds);

}  // namespace davpse
