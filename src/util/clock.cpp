#include "util/clock.h"

#include <ctime>

namespace davpse {
namespace {

double clock_seconds(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

double wall_time_seconds() { return clock_seconds(CLOCK_MONOTONIC); }

double unix_time_seconds() { return clock_seconds(CLOCK_REALTIME); }

double thread_cpu_seconds() { return clock_seconds(CLOCK_THREAD_CPUTIME_ID); }

double process_cpu_seconds() {
  return clock_seconds(CLOCK_PROCESS_CPUTIME_ID);
}

}  // namespace davpse
