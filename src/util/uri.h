// Minimal URI handling for the HTTP/DAV stack: absolute-URI and
// path-only parsing, plus the path normalization DAV needs to compare
// and traverse resource hierarchies safely (no ".." escapes).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace davpse {

struct Uri {
  std::string scheme;  // "http" (empty for path-only references)
  std::string host;    // endpoint name in the in-memory network
  int port = 0;        // 0 = unspecified
  std::string path;    // percent-DECODED, always starts with '/'

  /// Re-encodes the path for the wire.
  std::string encoded_path() const;
  std::string to_string() const;
};

/// Parses "http://host[:port]/path" or "/path". Decodes percent
/// escapes in the path. Rejects empty input and malformed escapes.
Result<Uri> parse_uri(std::string_view raw);

/// Collapses "//" and ".", rejects paths that escape the root via
/// "..". Result has a leading '/' and no trailing '/' (except root).
Result<std::string> normalize_path(std::string_view path);

/// Splits a normalized path into segments ("/a/b" -> {"a","b"}).
std::vector<std::string> path_segments(std::string_view normalized);

/// Parent of a normalized path ("/a/b" -> "/a", "/a" -> "/").
std::string parent_path(std::string_view normalized);

/// Last segment ("/a/b" -> "b"); empty for root.
std::string basename_of(std::string_view normalized);

/// Joins parent + child segment with exactly one '/'.
std::string join_path(std::string_view parent, std::string_view child);

/// True if `descendant` == `ancestor` or lies strictly below it.
bool path_is_within(std::string_view descendant, std::string_view ancestor);

}  // namespace davpse
