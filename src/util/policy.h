// Unified retry/backoff/deadline policy — the one knob set every
// client in the stack shares. Before this existed, retry behaviour was
// scattered: HttpClient had a bespoke dead-keep-alive replay counter
// (ClientConfig::max_retries), timeouts hid inside
// Stream::set_read_timeout call sites, and the cache had none at all.
// RetryPolicy and Deadline are plain value types so the same policy
// can be threaded through HttpClient, DavClient, ftp::Client, and
// CachingDavStorage without any of them knowing about the others.
#pragma once

#include <cstdint>
#include <limits>

namespace davpse {

/// Absolute point in time an operation must finish by, measured on the
/// monotonic wall clock. Value type: copy freely, compare remaining().
class Deadline {
 public:
  /// No deadline: remaining() is +infinity, expired() never true.
  static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now.
  static Deadline after(double seconds);

  bool is_never() const {
    return at_ == std::numeric_limits<double>::infinity();
  }

  /// Seconds until expiry (may be negative once expired; +infinity for
  /// never()).
  double remaining_seconds() const;

  bool expired() const { return !is_never() && remaining_seconds() <= 0; }

  /// Whether a wait of `seconds` still fits before expiry.
  bool allows(double seconds) const {
    return is_never() || seconds <= remaining_seconds();
  }

 private:
  Deadline() = default;
  double at_ = std::numeric_limits<double>::infinity();
};

/// How an operation retries: attempt budget, jittered exponential
/// backoff between attempts, a per-attempt response timeout, and an
/// overall deadline for the whole call. Which *failures* are worth
/// retrying is the caller's decision (see Status::is_retryable() and
/// http::method_is_replay_safe) — the policy only shapes the loop.
struct RetryPolicy {
  /// Total tries including the first (1 = never retry). The default of
  /// 2 preserves the old ClientConfig::max_retries = 1 behaviour.
  int max_attempts = 2;
  /// Backoff before the first retry; doubles (see multiplier) up to
  /// max_backoff_seconds on each further retry.
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Fraction of the computed backoff randomized away: a sleep lands
  /// uniformly in [b*(1-jitter), b]. 0 = fully deterministic.
  double jitter = 0.5;
  /// Per-attempt deadline for reading the response (0 = none). Applied
  /// as a read timeout on the transport, so a stalled server yields
  /// kTimeout instead of pinning the caller.
  double attempt_timeout_seconds = 0;
  /// Budget for the whole operation across all attempts and backoff
  /// sleeps (0 = none). Once spent, no further retry is scheduled.
  double overall_deadline_seconds = 0;

  /// Policy that never retries and never times out.
  static RetryPolicy none() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }

  /// The default-constructed policy, spelled out for call sites.
  static RetryPolicy standard() { return RetryPolicy(); }

  /// Backoff to sleep after `completed_attempts` tries have failed
  /// (1-based: the sleep before the first retry passes 1). `unit` is a
  /// uniform random draw in [0, 1) supplied by the caller so tests can
  /// pin the jitter.
  double backoff_before_attempt(int completed_attempts, double unit) const;

  /// Deadline::after(overall_deadline_seconds), or never() when 0.
  Deadline start_deadline() const;
};

}  // namespace davpse
