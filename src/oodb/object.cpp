#include "oodb/object.h"

#include <cassert>
#include <cstring>

namespace davpse::oodb {
namespace {

void put_u8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void put_u32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
void put_f64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool u8(uint8_t* v) {
    if (pos + 1 > data.size()) return false;
    *v = static_cast<uint8_t>(data[pos]);
    pos += 1;
    return true;
  }
  bool u32(uint32_t* v) {
    if (pos + 4 > data.size()) return false;
    std::memcpy(v, data.data() + pos, 4);
    pos += 4;
    return true;
  }
  bool u64(uint64_t* v) {
    if (pos + 8 > data.size()) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  }
  bool f64(double* v) {
    if (pos + 8 > data.size()) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  }
  bool str(std::string* v) {
    uint32_t len;
    if (!u32(&len) || pos + len > data.size()) return false;
    v->assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

enum : uint8_t {
  kTagInt = 1,
  kTagDouble = 2,
  kTagString = 3,
  kTagRef = 4,
  kTagDoubleArray = 5,
  kTagRefArray = 6,
};

}  // namespace

PersistentObject::PersistentObject(const ClassDef& def, ObjectId id)
    : id_(id), class_id_(def.class_id) {
  values_.reserve(def.fields.size());
  for (const FieldDef& field : def.fields) {
    switch (field.type) {
      case FieldType::kInt64: values_.emplace_back(int64_t{0}); break;
      case FieldType::kDouble: values_.emplace_back(0.0); break;
      case FieldType::kString:
      case FieldType::kBytes: values_.emplace_back(std::string()); break;
      case FieldType::kObjectRef: values_.emplace_back(kNullObject); break;
      case FieldType::kDoubleArray:
        values_.emplace_back(std::vector<double>());
        break;
      case FieldType::kRefArray:
        values_.emplace_back(std::vector<ObjectId>());
        break;
    }
  }
}

int64_t PersistentObject::get_int(size_t index) const {
  assert(index < values_.size());
  const auto* v = std::get_if<int64_t>(&values_[index]);
  return v != nullptr ? *v : 0;
}

double PersistentObject::get_double(size_t index) const {
  assert(index < values_.size());
  const auto* v = std::get_if<double>(&values_[index]);
  return v != nullptr ? *v : 0.0;
}

const std::string& PersistentObject::get_string(size_t index) const {
  assert(index < values_.size());
  static const std::string kEmpty;
  const auto* v = std::get_if<std::string>(&values_[index]);
  return v != nullptr ? *v : kEmpty;
}

ObjectId PersistentObject::get_ref(size_t index) const {
  assert(index < values_.size());
  const auto* v = std::get_if<ObjectId>(&values_[index]);
  return v != nullptr ? *v : kNullObject;
}

const std::vector<double>& PersistentObject::get_double_array(
    size_t index) const {
  assert(index < values_.size());
  static const std::vector<double> kEmpty;
  const auto* v = std::get_if<std::vector<double>>(&values_[index]);
  return v != nullptr ? *v : kEmpty;
}

const std::vector<ObjectId>& PersistentObject::get_ref_array(
    size_t index) const {
  assert(index < values_.size());
  static const std::vector<ObjectId> kEmpty;
  const auto* v = std::get_if<std::vector<ObjectId>>(&values_[index]);
  return v != nullptr ? *v : kEmpty;
}

void PersistentObject::set(size_t index, Value value) {
  assert(index < values_.size());
  values_[index] = std::move(value);
}

std::string PersistentObject::encode() const {
  std::string out;
  put_u64(&out, id_);
  put_u32(&out, class_id_);
  put_u32(&out, static_cast<uint32_t>(values_.size()));
  for (const Value& value : values_) {
    if (const auto* v = std::get_if<int64_t>(&value)) {
      put_u8(&out, kTagInt);
      put_u64(&out, static_cast<uint64_t>(*v));
    } else if (const auto* v = std::get_if<double>(&value)) {
      put_u8(&out, kTagDouble);
      put_f64(&out, *v);
    } else if (const auto* v = std::get_if<std::string>(&value)) {
      put_u8(&out, kTagString);
      put_u32(&out, static_cast<uint32_t>(v->size()));
      out += *v;
    } else if (const auto* v = std::get_if<ObjectId>(&value)) {
      put_u8(&out, kTagRef);
      put_u64(&out, *v);
    } else if (const auto* v = std::get_if<std::vector<double>>(&value)) {
      put_u8(&out, kTagDoubleArray);
      put_u32(&out, static_cast<uint32_t>(v->size()));
      for (double d : *v) put_f64(&out, d);
    } else if (const auto* v = std::get_if<std::vector<ObjectId>>(&value)) {
      put_u8(&out, kTagRefArray);
      put_u32(&out, static_cast<uint32_t>(v->size()));
      for (ObjectId ref : *v) put_u64(&out, ref);
    }
  }
  return out;
}

Result<PersistentObject> PersistentObject::decode(std::string_view data) {
  Cursor cursor{data};
  PersistentObject object;
  uint32_t field_count;
  if (!cursor.u64(&object.id_) || !cursor.u32(&object.class_id_) ||
      !cursor.u32(&field_count)) {
    return Status(ErrorCode::kMalformed, "truncated object header");
  }
  object.values_.reserve(field_count);
  for (uint32_t i = 0; i < field_count; ++i) {
    uint8_t tag;
    if (!cursor.u8(&tag)) {
      return Status(ErrorCode::kMalformed, "truncated object field");
    }
    switch (tag) {
      case kTagInt: {
        uint64_t v;
        if (!cursor.u64(&v)) {
          return Status(ErrorCode::kMalformed, "truncated int field");
        }
        object.values_.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case kTagDouble: {
        double v;
        if (!cursor.f64(&v)) {
          return Status(ErrorCode::kMalformed, "truncated double field");
        }
        object.values_.emplace_back(v);
        break;
      }
      case kTagString: {
        std::string v;
        if (!cursor.str(&v)) {
          return Status(ErrorCode::kMalformed, "truncated string field");
        }
        object.values_.emplace_back(std::move(v));
        break;
      }
      case kTagRef: {
        uint64_t v;
        if (!cursor.u64(&v)) {
          return Status(ErrorCode::kMalformed, "truncated ref field");
        }
        object.values_.emplace_back(static_cast<ObjectId>(v));
        break;
      }
      case kTagDoubleArray: {
        uint32_t count;
        if (!cursor.u32(&count)) {
          return Status(ErrorCode::kMalformed, "truncated array field");
        }
        std::vector<double> values(count);
        for (uint32_t j = 0; j < count; ++j) {
          if (!cursor.f64(&values[j])) {
            return Status(ErrorCode::kMalformed, "truncated array field");
          }
        }
        object.values_.emplace_back(std::move(values));
        break;
      }
      case kTagRefArray: {
        uint32_t count;
        if (!cursor.u32(&count)) {
          return Status(ErrorCode::kMalformed, "truncated ref array");
        }
        std::vector<ObjectId> refs(count);
        for (uint32_t j = 0; j < count; ++j) {
          uint64_t v;
          if (!cursor.u64(&v)) {
            return Status(ErrorCode::kMalformed, "truncated ref array");
          }
          refs[j] = v;
        }
        object.values_.emplace_back(std::move(refs));
        break;
      }
      default:
        return Status(ErrorCode::kMalformed,
                      "unknown field tag " + std::to_string(tag));
    }
  }
  return object;
}

size_t PersistentObject::memory_bytes() const {
  size_t total = sizeof(PersistentObject);
  for (const Value& value : values_) {
    total += sizeof(Value);
    if (const auto* v = std::get_if<std::string>(&value)) {
      total += v->capacity();
    } else if (const auto* v = std::get_if<std::vector<double>>(&value)) {
      total += v->capacity() * sizeof(double);
    } else if (const auto* v = std::get_if<std::vector<ObjectId>>(&value)) {
      total += v->capacity() * sizeof(ObjectId);
    }
  }
  return total;
}

}  // namespace davpse::oodb
