// Persistent objects and the proprietary binary codec — the "binary
// formatted objects such as doubles are typically more compact than
// textual/XML representations" side of the paper's §3.2.4 comparison.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "oodb/schema.h"
#include "util/status.h"

namespace davpse::oodb {

/// Object identity. Sequential; segment locality falls out of
/// allocation order (oid / segment_capacity).
using ObjectId = uint64_t;
inline constexpr ObjectId kNullObject = 0;

using Value = std::variant<int64_t, double, std::string, ObjectId,
                           std::vector<double>, std::vector<ObjectId>>;

/// A persistent object: class id + one Value per schema field.
class PersistentObject {
 public:
  PersistentObject() = default;
  PersistentObject(const ClassDef& def, ObjectId id);

  ObjectId id() const { return id_; }
  uint32_t class_id() const { return class_id_; }
  size_t field_count() const { return values_.size(); }

  // Typed accessors; index must match the schema field's type
  // (assert + default on mismatch, mirroring OODB codegen accessors).
  int64_t get_int(size_t index) const;
  double get_double(size_t index) const;
  const std::string& get_string(size_t index) const;
  ObjectId get_ref(size_t index) const;
  const std::vector<double>& get_double_array(size_t index) const;
  const std::vector<ObjectId>& get_ref_array(size_t index) const;

  void set(size_t index, Value value);

  /// Binary encoding (class id + tagged values).
  std::string encode() const;
  static Result<PersistentObject> decode(std::string_view data);

  /// Rough in-memory footprint, used for cache accounting.
  size_t memory_bytes() const;

 private:
  ObjectId id_ = kNullObject;
  uint32_t class_id_ = 0;
  std::vector<Value> values_;
};

}  // namespace davpse::oodb
