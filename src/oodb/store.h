// Server-side object storage: objects grouped into fixed-capacity
// segments (allocation-order locality), persisted in a proprietary
// binary file that carries per-segment "hidden" index space — the
// overhead the paper alludes to ("our OODBMS also creates its own
// overhead, using hidden segments to optimize performance").
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "oodb/object.h"
#include "oodb/schema.h"
#include "util/status.h"

namespace davpse::oodb {

/// Objects per segment. A cache-forward client that faults one object
/// receives the whole segment.
inline constexpr uint64_t kSegmentCapacity = 128;

/// Reserved index/freelist space written per segment (hidden overhead).
inline constexpr uint64_t kHiddenSegmentBytes = 512;

/// File header + root directory reservation.
inline constexpr uint64_t kStoreHeaderBytes = 4096;

inline uint32_t segment_of(ObjectId id) {
  return static_cast<uint32_t>((id - 1) / kSegmentCapacity);
}

/// Thread-safe object store with whole-file persistence.
class SegmentStore {
 public:
  explicit SegmentStore(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Allocates `count` consecutive object ids; returns the first.
  ObjectId allocate(uint64_t count);

  /// Inserts or replaces by the id encoded in `object`.
  Status write(const PersistentObject& object);
  Status write_encoded(std::string encoded);

  Result<PersistentObject> read(ObjectId id) const;
  Result<std::string> read_encoded(ObjectId id) const;

  /// Every object in a segment (encoded), for cache-forward shipping.
  std::vector<std::string> read_segment(uint32_t segment) const;

  Status remove(ObjectId id);
  bool contains(ObjectId id) const;
  uint64_t object_count() const;

  /// Named roots (entry points into the object graph).
  void set_root(const std::string& name, ObjectId id);
  ObjectId get_root(const std::string& name) const;
  std::vector<std::string> root_names() const;

  /// All live object ids in ascending order (migration scans).
  std::vector<ObjectId> all_ids() const;

  // -- persistence -------------------------------------------------------

  /// Writes the full store image: header block, schema, roots, then
  /// each segment padded with its hidden index space.
  Status save(const std::filesystem::path& path) const;

  /// Loads a store image; the embedded schema must match
  /// `expected_schema` by fingerprint (the compilation-cycle check).
  static Result<std::unique_ptr<SegmentStore>> load(
      const std::filesystem::path& path, const Schema& expected_schema);

  /// Size the store image would occupy on disk (without writing).
  uint64_t image_bytes() const;

 private:
  std::string build_image() const;  // caller holds mutex_

  Schema schema_;
  mutable std::mutex mutex_;
  std::map<ObjectId, std::string> objects_;  // encoded
  std::map<std::string, ObjectId> roots_;
  ObjectId next_id_ = 1;
};

}  // namespace davpse::oodb
