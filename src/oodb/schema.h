// OODBMS schema model. The paper's Ecce 1.5 kept "70 classes 'marked'
// for persistent storage" in a commercial OODB whose pain points it
// catalogs: proprietary binary formats, tight language coupling, and
// "a schema evolution process made painful by outdated
// schema/application compilation cycles". This module reproduces that
// contract: classes are declared, then compile() freezes them into
// numbered layouts; a client whose compiled fingerprint differs from
// the store's refuses to open (the compilation-cycle pain, observable
// in tests).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace davpse::oodb {

enum class FieldType : uint8_t {
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kBytes = 4,
  kObjectRef = 5,    // ObjectId of another persistent object
  kDoubleArray = 6,  // n-dimensional property payloads
  kRefArray = 7,     // one-to-many relationship
};

struct FieldDef {
  std::string name;
  FieldType type;
};

struct ClassDef {
  uint32_t class_id = 0;  // assigned by compile()
  std::string name;
  std::vector<FieldDef> fields;

  /// Index of a field by name; -1 if absent.
  int field_index(std::string_view field_name) const;
};

class Schema {
 public:
  /// Declares a class; must precede compile(). kAlreadyExists on
  /// duplicate names.
  Status add_class(std::string name, std::vector<FieldDef> fields);

  /// Freezes the schema: assigns class ids in declaration order and
  /// computes the fingerprint. No further add_class() calls.
  Status compile();
  bool compiled() const { return compiled_; }

  const ClassDef* find(std::string_view name) const;
  const ClassDef* find(uint32_t class_id) const;
  size_t class_count() const { return classes_.size(); }
  const std::vector<ClassDef>& classes() const { return classes_; }

  /// Stable hash over every class and field; two applications can
  /// share a store only if their fingerprints match.
  uint64_t fingerprint() const;

  /// Binary round trip (the schema is persisted inside the store).
  std::string serialize() const;
  static Result<Schema> deserialize(std::string_view data);

 private:
  std::vector<ClassDef> classes_;
  std::map<std::string, size_t, std::less<>> by_name_;
  bool compiled_ = false;
  uint64_t fingerprint_ = 0;
};

}  // namespace davpse::oodb
