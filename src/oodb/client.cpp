#include "oodb/client.h"

#include <algorithm>

namespace davpse::oodb {

namespace {
constexpr uint64_t kAllocBatch = 64;
}

OodbClient::OodbClient(OodbClientConfig config, const Schema& schema)
    : OodbClient(std::move(config), schema, net::Network::instance()) {}

OodbClient::OodbClient(OodbClientConfig config, const Schema& schema,
                       net::Network& network)
    : config_(std::move(config)), schema_(schema), network_(network) {}

OodbClient::~OodbClient() = default;

Status OodbClient::open() {
  if (connection_ != nullptr) return Status::ok();
  if (!schema_.compiled()) {
    return error(ErrorCode::kInvalidArgument,
                 "schema must be compiled before opening a connection");
  }
  auto stream = network_.connect(config_.endpoint);
  if (!stream.ok()) return stream.status();
  connection_ = std::move(stream).value();
  if (model_ != nullptr) model_->add_round_trips(1);
  std::string payload;
  frame_put_u64(&payload, schema_.fingerprint());
  auto reply = call(Op::kHello, payload);
  if (!reply.ok()) {
    connection_.reset();
    return reply.status();
  }
  return Status::ok();
}

Result<std::string> OodbClient::call(Op op, std::string_view payload) {
  if (connection_ == nullptr) {
    return Status(ErrorCode::kUnavailable, "client is not open");
  }
  DAVPSE_RETURN_IF_ERROR(write_frame(connection_.get(), op, payload));
  auto frame = read_frame(connection_.get());
  if (!frame.ok()) {
    connection_.reset();
    return frame.status();
  }
  if (model_ != nullptr) {
    model_->add_round_trips(1);
    const net::TrafficCounter* counter = connection_->traffic();
    if (counter != nullptr) {
      uint64_t total = counter->total();
      if (total > accounted_bytes_) {
        model_->add_bytes(total - accounted_bytes_);
        accounted_bytes_ = total;
      }
    }
  }
  if (frame.value().op == Op::kError) {
    // The server flattened a Status into "CODE: message"; surface the
    // conflict/not-found distinction for the common cases.
    const std::string& message = frame.value().payload;
    ErrorCode code = ErrorCode::kInternal;
    if (message.starts_with("NOT_FOUND")) code = ErrorCode::kNotFound;
    if (message.starts_with("CONFLICT")) code = ErrorCode::kConflict;
    if (message.starts_with("MALFORMED")) code = ErrorCode::kMalformed;
    return Status(code, message);
  }
  return std::move(frame.value().payload);
}

PersistentObject* OodbClient::insert_cache(PersistentObject object) {
  ObjectId id = object.id();
  auto owned = std::make_unique<PersistentObject>(std::move(object));
  PersistentObject* raw = owned.get();
  auto [it, inserted] = cache_.insert_or_assign(id, std::move(owned));
  cached_bytes_ += raw->memory_bytes();
  return it->second.get();
}

Result<PersistentObject*> OodbClient::create(const std::string& class_name) {
  const ClassDef* def = schema_.find(class_name);
  if (def == nullptr) {
    return Status(ErrorCode::kNotFound, "no such class: " + class_name);
  }
  if (alloc_next_ >= alloc_end_) {
    std::string payload;
    frame_put_u64(&payload, kAllocBatch);
    auto reply = call(Op::kAlloc, payload);
    if (!reply.ok()) return reply.status();
    FrameCursor cursor{reply.value()};
    uint64_t first;
    if (!cursor.u64(&first)) {
      return Status(ErrorCode::kMalformed, "bad ALLOC reply");
    }
    alloc_next_ = first;
    alloc_end_ = first + kAllocBatch;
  }
  ObjectId id = alloc_next_++;
  PersistentObject* object = insert_cache(PersistentObject(*def, id));
  dirty_.push_back(id);
  return object;
}

Result<PersistentObject*> OodbClient::read(ObjectId id) {
  auto cached = cache_.find(id);
  if (cached != cache_.end()) return cached->second.get();

  if (config_.cache_forward) {
    // Fault the whole segment in (the cache-forward behavior).
    std::string payload;
    frame_put_u32(&payload, segment_of(id));
    auto reply = call(Op::kReadSegment, payload);
    if (!reply.ok()) return reply.status();
    ++segment_fetches_;
    FrameCursor cursor{reply.value()};
    uint32_t count;
    if (!cursor.u32(&count)) {
      return Status(ErrorCode::kMalformed, "bad READ_SEGMENT reply");
    }
    PersistentObject* wanted = nullptr;
    for (uint32_t i = 0; i < count; ++i) {
      std::string encoded;
      if (!cursor.bytes(&encoded)) {
        return Status(ErrorCode::kMalformed, "truncated segment object");
      }
      auto decoded = PersistentObject::decode(encoded);
      if (!decoded.ok()) return decoded.status();
      ObjectId decoded_id = decoded.value().id();
      if (!cache_.contains(decoded_id)) {
        PersistentObject* inserted =
            insert_cache(std::move(decoded).value());
        if (decoded_id == id) wanted = inserted;
      } else if (decoded_id == id) {
        wanted = cache_[decoded_id].get();
      }
    }
    if (wanted == nullptr) {
      return Status(ErrorCode::kNotFound,
                    "no object with id " + std::to_string(id));
    }
    return wanted;
  }

  std::string payload;
  frame_put_u64(&payload, id);
  auto reply = call(Op::kRead, payload);
  if (!reply.ok()) return reply.status();
  ++object_fetches_;
  auto decoded = PersistentObject::decode(reply.value());
  if (!decoded.ok()) return decoded.status();
  return insert_cache(std::move(decoded).value());
}

void OodbClient::mark_dirty(ObjectId id) { dirty_.push_back(id); }

Status OodbClient::commit() {
  if (dirty_.empty()) {
    auto reply = call(Op::kCommit, "");
    return reply.ok() ? Status::ok() : reply.status();
  }
  std::string payload;
  // Deduplicate while preserving order.
  std::vector<ObjectId> unique;
  for (ObjectId id : dirty_) {
    if (std::find(unique.begin(), unique.end(), id) == unique.end()) {
      unique.push_back(id);
    }
  }
  frame_put_u32(&payload, static_cast<uint32_t>(unique.size()));
  for (ObjectId id : unique) {
    auto it = cache_.find(id);
    if (it == cache_.end()) continue;
    frame_put_bytes(&payload, it->second->encode());
  }
  auto reply = call(Op::kWrite, payload);
  if (!reply.ok()) return reply.status();
  dirty_.clear();
  auto commit_reply = call(Op::kCommit, "");
  return commit_reply.ok() ? Status::ok() : commit_reply.status();
}

Status OodbClient::remove(ObjectId id) {
  std::string payload;
  frame_put_u64(&payload, id);
  auto reply = call(Op::kRemove, payload);
  if (!reply.ok()) return reply.status();
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    cached_bytes_ -= it->second->memory_bytes();
    cache_.erase(it);
  }
  return Status::ok();
}

Result<ObjectId> OodbClient::get_root(const std::string& name) {
  std::string payload;
  frame_put_bytes(&payload, name);
  auto reply = call(Op::kGetRoot, payload);
  if (!reply.ok()) return reply.status();
  FrameCursor cursor{reply.value()};
  uint64_t id;
  if (!cursor.u64(&id)) {
    return Status(ErrorCode::kMalformed, "bad GET_ROOT reply");
  }
  return ObjectId{id};
}

Status OodbClient::set_root(const std::string& name, ObjectId id) {
  std::string payload;
  frame_put_bytes(&payload, name);
  frame_put_u64(&payload, id);
  auto reply = call(Op::kSetRoot, payload);
  return reply.ok() ? Status::ok() : reply.status();
}

Result<std::pair<uint64_t, uint64_t>> OodbClient::stats() {
  auto reply = call(Op::kStats, "");
  if (!reply.ok()) return reply.status();
  FrameCursor cursor{reply.value()};
  uint64_t objects, bytes;
  if (!cursor.u64(&objects) || !cursor.u64(&bytes)) {
    return Status(ErrorCode::kMalformed, "bad STATS reply");
  }
  return std::make_pair(objects, bytes);
}

void OodbClient::invalidate_cache() {
  cache_.clear();
  cached_bytes_ = 0;
  dirty_.clear();
}

}  // namespace davpse::oodb
