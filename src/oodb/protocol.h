// Binary wire protocol between the OODB page server and its clients.
// Frames: u32 payload_length | u8 opcode | payload. Responses reuse
// the frame with opcode kOk or kError (payload = message).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/stream.h"
#include "util/status.h"

namespace davpse::oodb {

enum class Op : uint8_t {
  kHello = 1,        // u64 schema fingerprint -> kOk | kError
  kAlloc = 2,        // u64 count -> u64 first id
  kWrite = 3,        // u32 n, n x (u32 len, bytes) -> kOk
  kRead = 4,         // u64 id -> bytes
  kReadSegment = 5,  // u32 segment -> u32 n, n x (u32 len, bytes)
  kRemove = 6,       // u64 id -> kOk
  kGetRoot = 7,      // string -> u64 id (0 if unset)
  kSetRoot = 8,      // u32 len, name, u64 id -> kOk
  kCommit = 9,       // -> kOk (persists the store image)
  kStats = 10,       // -> u64 object count, u64 image bytes
  kOk = 200,
  kError = 201,
};

struct Frame {
  Op op;
  std::string payload;
};

Status write_frame(net::Stream* stream, Op op, std::string_view payload);
Result<Frame> read_frame(net::Stream* stream);

// Payload encoding helpers (little-endian, matching the object codec).
void frame_put_u32(std::string* out, uint32_t v);
void frame_put_u64(std::string* out, uint64_t v);
void frame_put_bytes(std::string* out, std::string_view bytes);

struct FrameCursor {
  std::string_view data;
  size_t pos = 0;
  bool u32(uint32_t* v);
  bool u64(uint64_t* v);
  bool bytes(std::string* v);
};

}  // namespace davpse::oodb
