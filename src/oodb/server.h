// The OODB page server: owns a SegmentStore, serves the binary
// protocol, persists the store image on commit. Stands in for the
// commercial OODBMS server Ecce 1.5 ran against.
#pragma once

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/network.h"
#include "oodb/protocol.h"
#include "oodb/store.h"
#include "util/status.h"

namespace davpse::oodb {

struct OodbServerConfig {
  std::string endpoint;
  std::filesystem::path store_file;  // image persisted here on commit
};

class OodbServer {
 public:
  /// Serves an existing store (takes ownership).
  OodbServer(OodbServerConfig config, std::unique_ptr<SegmentStore> store);
  ~OodbServer();

  OodbServer(const OodbServer&) = delete;
  OodbServer& operator=(const OodbServer&) = delete;

  Status start();
  Status start(net::Network& network);
  void stop();

  SegmentStore& store() { return *store_; }

 private:
  void accept_loop();
  void serve_session(std::unique_ptr<net::Stream> stream);
  Result<std::string> dispatch(Op op, std::string_view payload, bool* hello_ok);

  OodbServerConfig config_;
  std::unique_ptr<SegmentStore> store_;
  std::unique_ptr<net::Listener> listener_;
  std::vector<std::thread> threads_;
  std::mutex threads_mutex_;
  std::atomic<bool> running_{false};
};

}  // namespace davpse::oodb
