#include "oodb/server.h"

#include "util/log.h"

namespace davpse::oodb {

OodbServer::OodbServer(OodbServerConfig config,
                       std::unique_ptr<SegmentStore> store)
    : config_(std::move(config)), store_(std::move(store)) {}

OodbServer::~OodbServer() { stop(); }

Status OodbServer::start() { return start(net::Network::instance()); }

Status OodbServer::start(net::Network& network) {
  auto listener = network.listen(config_.endpoint);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  running_.store(true);
  std::lock_guard<std::mutex> lock(threads_mutex_);
  threads_.emplace_back([this] { accept_loop(); });
  return Status::ok();
}

void OodbServer::stop() {
  running_.store(false);
  if (listener_) listener_->shutdown();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  listener_.reset();
}

void OodbServer::accept_loop() {
  while (running_.load()) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back(
        [this, s = std::move(stream).value()]() mutable {
          serve_session(std::move(s));
        });
  }
}

Result<std::string> OodbServer::dispatch(Op op, std::string_view payload,
                                         bool* hello_ok) {
  FrameCursor cursor{payload};
  switch (op) {
    case Op::kHello: {
      uint64_t fingerprint;
      if (!cursor.u64(&fingerprint)) {
        return Status(ErrorCode::kMalformed, "bad HELLO payload");
      }
      if (fingerprint != store_->schema().fingerprint()) {
        return Status(ErrorCode::kConflict,
                      "schema fingerprint mismatch: client must be "
                      "recompiled against the store schema");
      }
      *hello_ok = true;
      return std::string();
    }
    case Op::kAlloc: {
      uint64_t count;
      if (!cursor.u64(&count) || count == 0) {
        return Status(ErrorCode::kMalformed, "bad ALLOC payload");
      }
      std::string reply;
      frame_put_u64(&reply, store_->allocate(count));
      return reply;
    }
    case Op::kWrite: {
      uint32_t count;
      if (!cursor.u32(&count)) {
        return Status(ErrorCode::kMalformed, "bad WRITE payload");
      }
      for (uint32_t i = 0; i < count; ++i) {
        std::string encoded;
        if (!cursor.bytes(&encoded)) {
          return Status(ErrorCode::kMalformed, "truncated WRITE object");
        }
        DAVPSE_RETURN_IF_ERROR(store_->write_encoded(std::move(encoded)));
      }
      return std::string();
    }
    case Op::kRead: {
      uint64_t id;
      if (!cursor.u64(&id)) {
        return Status(ErrorCode::kMalformed, "bad READ payload");
      }
      return store_->read_encoded(id);
    }
    case Op::kReadSegment: {
      uint32_t segment;
      if (!cursor.u32(&segment)) {
        return Status(ErrorCode::kMalformed, "bad READ_SEGMENT payload");
      }
      auto objects = store_->read_segment(segment);
      std::string reply;
      frame_put_u32(&reply, static_cast<uint32_t>(objects.size()));
      for (const auto& encoded : objects) {
        frame_put_bytes(&reply, encoded);
      }
      return reply;
    }
    case Op::kRemove: {
      uint64_t id;
      if (!cursor.u64(&id)) {
        return Status(ErrorCode::kMalformed, "bad REMOVE payload");
      }
      DAVPSE_RETURN_IF_ERROR(store_->remove(id));
      return std::string();
    }
    case Op::kGetRoot: {
      std::string name;
      if (!cursor.bytes(&name)) {
        return Status(ErrorCode::kMalformed, "bad GET_ROOT payload");
      }
      std::string reply;
      frame_put_u64(&reply, store_->get_root(name));
      return reply;
    }
    case Op::kSetRoot: {
      std::string name;
      uint64_t id;
      if (!cursor.bytes(&name) || !cursor.u64(&id)) {
        return Status(ErrorCode::kMalformed, "bad SET_ROOT payload");
      }
      store_->set_root(name, id);
      return std::string();
    }
    case Op::kCommit: {
      if (!config_.store_file.empty()) {
        DAVPSE_RETURN_IF_ERROR(store_->save(config_.store_file));
      }
      return std::string();
    }
    case Op::kStats: {
      std::string reply;
      frame_put_u64(&reply, store_->object_count());
      frame_put_u64(&reply, store_->image_bytes());
      return reply;
    }
    default:
      return Status(ErrorCode::kUnsupported,
                    "unknown opcode " +
                        std::to_string(static_cast<int>(op)));
  }
}

void OodbServer::serve_session(std::unique_ptr<net::Stream> stream) {
  bool hello_ok = false;
  while (running_.load()) {
    auto frame = read_frame(stream.get());
    if (!frame.ok()) return;  // client went away
    if (!hello_ok && frame.value().op != Op::kHello) {
      (void)write_frame(stream.get(), Op::kError,
                        "HELLO required before other operations");
      continue;
    }
    auto reply = dispatch(frame.value().op, frame.value().payload,
                          &hello_ok);
    Status write_status =
        reply.ok()
            ? write_frame(stream.get(), Op::kOk, reply.value())
            : write_frame(stream.get(), Op::kError,
                          reply.status().to_string());
    if (!write_status.is_ok()) return;
  }
}

}  // namespace davpse::oodb
