// Cache-forward OODB client. On an object fault the client pulls the
// object's entire *segment* into its local cache — the "cache-forward
// architecture" the paper contrasts with DAV's per-object access and
// later observes that "the typical workflow processes that a user
// performs within Ecce did not derive significant benefit from".
// Cache-forwarding is a switch so the ablation bench can measure both
// modes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "net/network_model.h"
#include "oodb/protocol.h"
#include "oodb/store.h"
#include "util/status.h"

namespace davpse::oodb {

struct OodbClientConfig {
  std::string endpoint;
  bool cache_forward = true;  // fault whole segments vs single objects
};

class OodbClient {
 public:
  OodbClient(OodbClientConfig config, const Schema& schema);
  OodbClient(OodbClientConfig config, const Schema& schema,
             net::Network& network);
  ~OodbClient();

  OodbClient(const OodbClient&) = delete;
  OodbClient& operator=(const OodbClient&) = delete;

  /// Connects and performs the schema-fingerprint handshake. This is
  /// the client's "cold start" step: kConflict on mismatch.
  Status open();
  bool is_open() const { return connection_ != nullptr; }

  /// Creates a new object of `class_name` with a server-allocated id.
  /// The object lives in the local cache/dirty set until commit().
  Result<PersistentObject*> create(const std::string& class_name);

  /// Fetches an object (from cache, else from the server — pulling its
  /// whole segment when cache-forwarding). The pointer stays valid
  /// until invalidate_cache().
  Result<PersistentObject*> read(ObjectId id);

  /// Marks a cached object dirty so commit() ships it.
  void mark_dirty(ObjectId id);

  /// Ships all dirty objects and asks the server to persist.
  Status commit();

  Status remove(ObjectId id);

  Result<ObjectId> get_root(const std::string& name);
  Status set_root(const std::string& name, ObjectId id);

  Result<std::pair<uint64_t, uint64_t>> stats();  // {objects, image bytes}

  /// Drops the local cache (subsequent reads refetch).
  void invalidate_cache();

  // -- cache accounting (Table 3 "Size (res)" proxy) ---------------------
  size_t cached_objects() const { return cache_.size(); }
  size_t cached_bytes() const { return cached_bytes_; }
  uint64_t segment_fetches() const { return segment_fetches_; }
  uint64_t object_fetches() const { return object_fetches_; }

  void set_network_model(net::NetworkModel* model) { model_ = model; }

  const Schema& schema() const { return schema_; }

 private:
  Result<std::string> call(Op op, std::string_view payload);
  PersistentObject* insert_cache(PersistentObject object);

  OodbClientConfig config_;
  const Schema& schema_;
  net::Network& network_;
  std::unique_ptr<net::Stream> connection_;
  net::NetworkModel* model_ = nullptr;
  uint64_t accounted_bytes_ = 0;

  std::unordered_map<ObjectId, std::unique_ptr<PersistentObject>> cache_;
  std::vector<ObjectId> dirty_;
  size_t cached_bytes_ = 0;
  uint64_t segment_fetches_ = 0;
  uint64_t object_fetches_ = 0;

  // Batched id allocation (real OODB clients amortize this round trip).
  ObjectId alloc_next_ = 0;
  ObjectId alloc_end_ = 0;
};

}  // namespace davpse::oodb
