#include "oodb/store.h"

#include <cstring>

#include "util/fs.h"

namespace davpse::oodb {
namespace {

constexpr char kMagic[8] = {'D', 'P', 'O', 'O', 'D', 'B', '1', 0};

void put_u32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
void put_str(std::string* out, std::string_view s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

struct Cursor {
  std::string_view data;
  size_t pos = 0;
  bool u32(uint32_t* v) {
    if (pos + 4 > data.size()) return false;
    std::memcpy(v, data.data() + pos, 4);
    pos += 4;
    return true;
  }
  bool u64(uint64_t* v) {
    if (pos + 8 > data.size()) return false;
    std::memcpy(v, data.data() + pos, 8);
    pos += 8;
    return true;
  }
  bool str(std::string* v) {
    uint32_t len;
    if (!u32(&len) || pos + len > data.size()) return false;
    v->assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

}  // namespace

ObjectId SegmentStore::allocate(uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId first = next_id_;
  next_id_ += count;
  return first;
}

Status SegmentStore::write(const PersistentObject& object) {
  return write_encoded(object.encode());
}

Status SegmentStore::write_encoded(std::string encoded) {
  auto decoded = PersistentObject::decode(encoded);
  if (!decoded.ok()) return decoded.status();
  ObjectId id = decoded.value().id();
  if (id == kNullObject) {
    return error(ErrorCode::kInvalidArgument, "object has no id");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= next_id_) next_id_ = id + 1;
  objects_[id] = std::move(encoded);
  return Status::ok();
}

Result<PersistentObject> SegmentStore::read(ObjectId id) const {
  auto encoded = read_encoded(id);
  if (!encoded.ok()) return encoded.status();
  return PersistentObject::decode(encoded.value());
}

Result<std::string> SegmentStore::read_encoded(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status(ErrorCode::kNotFound,
                  "no object with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<std::string> SegmentStore::read_segment(uint32_t segment) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId first = static_cast<ObjectId>(segment) * kSegmentCapacity + 1;
  ObjectId last = first + kSegmentCapacity;  // exclusive
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(first);
       it != objects_.end() && it->first < last; ++it) {
    out.push_back(it->second);
  }
  return out;
}

Status SegmentStore::remove(ObjectId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (objects_.erase(id) == 0) {
    return error(ErrorCode::kNotFound,
                 "no object with id " + std::to_string(id));
  }
  return Status::ok();
}

bool SegmentStore::contains(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.contains(id);
}

uint64_t SegmentStore::object_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.size();
}

void SegmentStore::set_root(const std::string& name, ObjectId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_[name] = id;
}

ObjectId SegmentStore::get_root(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = roots_.find(name);
  return it == roots_.end() ? kNullObject : it->second;
}

std::vector<std::string> SegmentStore::root_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(roots_.size());
  for (const auto& [name, id] : roots_) out.push_back(name);
  return out;
}

std::vector<ObjectId> SegmentStore::all_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [id, encoded] : objects_) out.push_back(id);
  return out;
}

std::string SegmentStore::build_image() const {
  std::string image;
  image.append(kMagic, sizeof kMagic);
  put_u64(&image, next_id_);
  std::string schema_blob = schema_.serialize();
  put_str(&image, schema_blob);
  put_u32(&image, static_cast<uint32_t>(roots_.size()));
  for (const auto& [name, id] : roots_) {
    put_str(&image, name);
    put_u64(&image, id);
  }
  // Header block reservation ("hidden" store bookkeeping).
  if (image.size() < kStoreHeaderBytes) {
    image.resize(kStoreHeaderBytes, '\0');
  }
  // Segments in ascending order, each followed by its hidden index
  // space.
  auto it = objects_.begin();
  while (it != objects_.end()) {
    uint32_t segment = segment_of(it->first);
    std::string segment_block;
    uint32_t count = 0;
    while (it != objects_.end() && segment_of(it->first) == segment) {
      put_str(&segment_block, it->second);
      ++count;
      ++it;
    }
    put_u32(&image, segment);
    put_u32(&image, count);
    image += segment_block;
    image.append(kHiddenSegmentBytes, '\0');
  }
  return image;
}

uint64_t SegmentStore::image_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return build_image().size();
}

Status SegmentStore::save(const std::filesystem::path& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_file_atomic(path, build_image());
}

Result<std::unique_ptr<SegmentStore>> SegmentStore::load(
    const std::filesystem::path& path, const Schema& expected_schema) {
  std::string image;
  DAVPSE_RETURN_IF_ERROR(read_file(path, &image));
  if (image.size() < kStoreHeaderBytes ||
      std::memcmp(image.data(), kMagic, sizeof kMagic) != 0) {
    return Status(ErrorCode::kMalformed, "bad OODB store image");
  }
  Cursor cursor{image, sizeof kMagic};
  uint64_t next_id;
  std::string schema_blob;
  uint32_t root_count;
  if (!cursor.u64(&next_id) || !cursor.str(&schema_blob) ||
      !cursor.u32(&root_count)) {
    return Status(ErrorCode::kMalformed, "truncated OODB store header");
  }
  auto stored_schema = Schema::deserialize(schema_blob);
  if (!stored_schema.ok()) return stored_schema.status();
  if (stored_schema.value().fingerprint() != expected_schema.fingerprint()) {
    return Status(
        ErrorCode::kConflict,
        "schema mismatch: the store was written by an application "
        "compiled against a different schema (fingerprint " +
            std::to_string(stored_schema.value().fingerprint()) + " vs " +
            std::to_string(expected_schema.fingerprint()) +
            "); regenerate the store or recompile");
  }
  auto store_ptr =
      std::make_unique<SegmentStore>(std::move(stored_schema).value());
  SegmentStore& store = *store_ptr;
  store.next_id_ = next_id;
  for (uint32_t i = 0; i < root_count; ++i) {
    std::string name;
    uint64_t id;
    if (!cursor.str(&name) || !cursor.u64(&id)) {
      return Status(ErrorCode::kMalformed, "truncated OODB roots");
    }
    store.roots_[name] = id;
  }
  cursor.pos = kStoreHeaderBytes;
  while (cursor.pos < image.size()) {
    uint32_t segment, count;
    if (!cursor.u32(&segment) || !cursor.u32(&count)) {
      return Status(ErrorCode::kMalformed, "truncated OODB segment header");
    }
    for (uint32_t i = 0; i < count; ++i) {
      std::string encoded;
      if (!cursor.str(&encoded)) {
        return Status(ErrorCode::kMalformed, "truncated OODB object");
      }
      auto decoded = PersistentObject::decode(encoded);
      if (!decoded.ok()) return decoded.status();
      store.objects_[decoded.value().id()] = std::move(encoded);
    }
    cursor.pos += kHiddenSegmentBytes;
  }
  return store_ptr;
}

}  // namespace davpse::oodb
