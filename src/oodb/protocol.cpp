#include "oodb/protocol.h"

#include <cstring>

namespace davpse::oodb {

Status write_frame(net::Stream* stream, Op op, std::string_view payload) {
  std::string header(5, '\0');
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(header.data(), &len, 4);
  header[4] = static_cast<char>(op);
  DAVPSE_RETURN_IF_ERROR(stream->write(header));
  if (!payload.empty()) {
    DAVPSE_RETURN_IF_ERROR(stream->write(payload));
  }
  return Status::ok();
}

Result<Frame> read_frame(net::Stream* stream) {
  char header[5];
  DAVPSE_RETURN_IF_ERROR(stream->read_exact(header, sizeof header));
  uint32_t len;
  std::memcpy(&len, header, 4);
  Frame frame;
  frame.op = static_cast<Op>(static_cast<uint8_t>(header[4]));
  frame.payload.resize(len);
  if (len > 0) {
    DAVPSE_RETURN_IF_ERROR(stream->read_exact(frame.payload.data(), len));
  }
  return frame;
}

void frame_put_u32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void frame_put_u64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

void frame_put_bytes(std::string* out, std::string_view bytes) {
  frame_put_u32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

bool FrameCursor::u32(uint32_t* v) {
  if (pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + pos, 4);
  pos += 4;
  return true;
}

bool FrameCursor::u64(uint64_t* v) {
  if (pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + pos, 8);
  pos += 8;
  return true;
}

bool FrameCursor::bytes(std::string* v) {
  uint32_t len;
  if (!u32(&len) || pos + len > data.size()) return false;
  v->assign(data.data() + pos, len);
  pos += len;
  return true;
}

}  // namespace davpse::oodb
