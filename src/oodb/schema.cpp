#include "oodb/schema.h"

#include <cstring>

namespace davpse::oodb {
namespace {

/// FNV-1a, applied field by field for a stable schema fingerprint.
uint64_t fnv1a(uint64_t hash, std::string_view data) {
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void put_u32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void put_str(std::string* out, std::string_view s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool get_u32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool get_str(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len;
  if (!get_u32(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

int ClassDef::field_index(std::string_view field_name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::add_class(std::string name, std::vector<FieldDef> fields) {
  if (compiled_) {
    return error(ErrorCode::kInvalidArgument,
                 "schema is compiled; classes can no longer be added "
                 "(schema evolution requires a recompilation cycle)");
  }
  if (by_name_.contains(name)) {
    return error(ErrorCode::kAlreadyExists, "duplicate class: " + name);
  }
  by_name_[name] = classes_.size();
  ClassDef def;
  def.name = std::move(name);
  def.fields = std::move(fields);
  classes_.push_back(std::move(def));
  return Status::ok();
}

Status Schema::compile() {
  if (compiled_) {
    return error(ErrorCode::kInvalidArgument, "schema already compiled");
  }
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].class_id = static_cast<uint32_t>(i + 1);
    hash = fnv1a(hash, classes_[i].name);
    for (const FieldDef& field : classes_[i].fields) {
      hash = fnv1a(hash, field.name);
      char type_byte = static_cast<char>(field.type);
      hash = fnv1a(hash, std::string_view(&type_byte, 1));
    }
  }
  fingerprint_ = hash;
  compiled_ = true;
  return Status::ok();
}

const ClassDef* Schema::find(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &classes_[it->second];
}

const ClassDef* Schema::find(uint32_t class_id) const {
  if (class_id == 0 || class_id > classes_.size()) return nullptr;
  return &classes_[class_id - 1];
}

uint64_t Schema::fingerprint() const { return fingerprint_; }

std::string Schema::serialize() const {
  std::string out;
  put_u32(&out, static_cast<uint32_t>(classes_.size()));
  for (const ClassDef& def : classes_) {
    put_str(&out, def.name);
    put_u32(&out, static_cast<uint32_t>(def.fields.size()));
    for (const FieldDef& field : def.fields) {
      put_str(&out, field.name);
      out += static_cast<char>(field.type);
    }
  }
  return out;
}

Result<Schema> Schema::deserialize(std::string_view data) {
  Schema schema;
  size_t pos = 0;
  uint32_t class_count;
  if (!get_u32(data, &pos, &class_count)) {
    return Status(ErrorCode::kMalformed, "truncated schema");
  }
  for (uint32_t i = 0; i < class_count; ++i) {
    std::string name;
    uint32_t field_count;
    if (!get_str(data, &pos, &name) || !get_u32(data, &pos, &field_count)) {
      return Status(ErrorCode::kMalformed, "truncated schema class");
    }
    std::vector<FieldDef> fields;
    fields.reserve(field_count);
    for (uint32_t j = 0; j < field_count; ++j) {
      FieldDef field;
      if (!get_str(data, &pos, &field.name) || pos >= data.size()) {
        return Status(ErrorCode::kMalformed, "truncated schema field");
      }
      field.type = static_cast<FieldType>(data[pos++]);
      fields.push_back(std::move(field));
    }
    DAVPSE_RETURN_IF_ERROR(schema.add_class(std::move(name),
                                            std::move(fields)));
  }
  DAVPSE_RETURN_IF_ERROR(schema.compile());
  return schema;
}

}  // namespace davpse::oodb
